//! The service itself: a fixed worker pool multiplexing keep-alive
//! connections over a shared [`Staccato`] session.
//!
//! # Thread model
//!
//! One acceptor thread plus [`ServerConfig::workers`] worker threads.
//! Accepted connections land on a closable `ConnQueue`; a worker
//! pops a connection, serves **one** request (or gives up after the
//! socket's short poll timeout), then parks the connection back on the
//! queue. Connections outnumber workers by design — 32 keep-alive
//! clients are served by 4 workers because nobody owns a socket for
//! longer than one request. The cost is polling latency bounded by
//! `poll_interval × connections / workers` when everything is idle;
//! under load the next request's bytes are already buffered when the
//! connection is popped, so the poll never waits.
//!
//! Per-connection state (prepared statements) travels *with* the
//! connection through the queue, so any worker can serve any
//! connection's next request.
//!
//! # Limits
//!
//! * request bodies over [`ServerConfig::max_body_bytes`] → 413;
//! * clients sending faster than their token bucket refills → 429
//!   with `Retry-After` (identity = `X-Client-Id` header, else peer
//!   IP; the header exists because distinct load-generator clients
//!   share one loopback IP);
//! * queries running past [`ServerConfig::query_wall_limit`] → 408
//!   `QUERY_TIMEOUT`. Enforcement is **post-hoc**: the executors have
//!   no cancellation points, so the query runs to completion and the
//!   oversized result is discarded — the limit bounds what clients
//!   wait for, not what the server spends (DESIGN.md, "Service
//!   tier");
//! * a request whose bytes dribble in for longer than
//!   [`ServerConfig::request_deadline`] → 408 `REQUEST_TIMEOUT`;
//! * connections idle past [`ServerConfig::idle_timeout`] are dropped.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] stops the acceptor, closes the queue
//! (parked connections drop; their clients see EOF and can retry
//! elsewhere), and joins the workers. A worker mid-request **finishes
//! it** — the response is written with `Connection: close` — so
//! shutdown drains in-flight work without truncating anyone's answer.

use crate::error::ApiError;
use crate::http::{Connection, ReadError, Request, Response};
use crate::json::{obj, Json};
use crate::limits::{RateLimit, TokenBuckets};
use crate::stats::{Endpoint, ServerStats};
use staccato_query::{DocumentInput, IngestBatch, PreparedQuery, QueryOutput, SqlValue, Staccato};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// 413 threshold for request bodies.
    pub max_body_bytes: usize,
    /// Post-hoc per-query wall-clock limit (408 `QUERY_TIMEOUT`).
    pub query_wall_limit: Duration,
    /// How long a worker polls an idle connection before parking it.
    pub poll_interval: Duration,
    /// 408 threshold for a partially-received request.
    pub request_deadline: Duration,
    /// Drop keep-alive connections idle longer than this.
    pub idle_timeout: Duration,
    /// Per-client token bucket; `None` disables rate limiting.
    pub rate_limit: Option<RateLimit>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_body_bytes: 64 * 1024,
            query_wall_limit: Duration::from_secs(10),
            poll_interval: Duration::from_millis(15),
            request_deadline: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            rate_limit: None,
        }
    }
}

/// A connection plus the per-connection API state that must follow it
/// from worker to worker.
struct ClientConn {
    conn: Connection,
    /// Prepared statements; `statement_id` is the index.
    prepared: Vec<PreparedQuery>,
}

/// The closable connection queue: `Mutex<VecDeque>` + `Condvar`
/// (std's, because the in-tree `parking_lot` shim has no condvar).
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    conns: VecDeque<ClientConn>,
    closed: bool,
}

impl ConnQueue {
    fn new() -> ConnQueue {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Park a connection. After close, the connection is dropped
    /// instead (the socket closes; the client sees EOF).
    fn push(&self, conn: ClientConn) {
        let mut state = self.state.lock().expect("queue poisoned");
        if !state.closed {
            state.conns.push_back(conn);
            drop(state);
            self.ready.notify_one();
        }
    }

    /// Next connection, blocking until one is parked or the queue
    /// closes. `None` means shut down.
    fn pop(&self) -> Option<ClientConn> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(conn) = state.conns.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Close: wake every worker, drop every parked connection.
    fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        state.conns.clear();
        drop(state);
        self.ready.notify_all();
    }
}

struct Shared {
    session: Arc<Staccato>,
    config: ServerConfig,
    stats: ServerStats,
    limiter: Option<TokenBuckets>,
    shutdown: AtomicBool,
    queue: ConnQueue,
}

/// The running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] also shuts down (via `Drop`).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Bind, spawn the acceptor and workers, and return the handle.
    pub fn start(session: Arc<Staccato>, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let limiter = config.rate_limit.map(TokenBuckets::new);
        let shared = Arc::new(Shared {
            session,
            config,
            stats: ServerStats::default(),
            limiter,
            shutdown: AtomicBool::new(false),
            queue: ConnQueue::new(),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("staccato-accept".into())
                .spawn(move || accept_loop(listener, &shared))?
        };
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("staccato-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight requests, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept()` by dialing it.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.shutdown_inner();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // the shutdown self-dial (or a straggler)
                }
                if stream
                    .set_read_timeout(Some(shared.config.poll_interval))
                    .is_err()
                {
                    continue;
                }
                shared.stats.connection_accepted();
                shared.queue.push(ClientConn {
                    conn: Connection::new(stream, peer),
                    prepared: Vec::new(),
                });
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (EMFILE, ECONNABORTED):
                // back off briefly rather than spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(mut client) = shared.queue.pop() {
        match serve_one(shared, &mut client) {
            Turn::Park => shared.queue.push(client),
            Turn::Close => drop(client),
        }
    }
}

/// What to do with the connection after one service turn.
enum Turn {
    /// Keep-alive: back on the queue for its next request.
    Park,
    /// Done (client left, protocol error, or shutdown).
    Close,
}

/// Serve at most one request off `client`.
fn serve_one(shared: &Shared, client: &mut ClientConn) -> Turn {
    let request = match client.conn.read_request(shared.config.max_body_bytes) {
        Ok(request) => request,
        Err(ReadError::Closed) | Err(ReadError::Io(_)) => return Turn::Close,
        Err(ReadError::Idle { started }) => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Turn::Close;
            }
            if let Some(started) = started {
                if started.elapsed() > shared.config.request_deadline {
                    let err = ApiError::new(408, "REQUEST_TIMEOUT", "request not received in time");
                    return answer(shared, client, Endpoint::Other, err.response(), true);
                }
            } else if client.conn.last_active.elapsed() > shared.config.idle_timeout {
                return Turn::Close;
            }
            return Turn::Park;
        }
        Err(ReadError::BodyTooLarge(n)) => {
            let err = ApiError::new(
                413,
                "BODY_TOO_LARGE",
                format!(
                    "request body is {n} bytes; the limit is {}",
                    shared.config.max_body_bytes
                ),
            );
            return answer(shared, client, Endpoint::Other, err.response(), true);
        }
        Err(ReadError::Malformed(why)) => {
            let err = ApiError::new(400, "BAD_REQUEST", why);
            return answer(shared, client, Endpoint::Other, err.response(), true);
        }
    };

    shared.stats.begin_request();
    let started = Instant::now();
    let (endpoint, response) = route(shared, client, &request);
    shared
        .stats
        .record(endpoint, response.status, started.elapsed());
    shared.stats.end_request();

    let close = request.wants_close() || shared.shutdown.load(Ordering::SeqCst);
    answer(shared, client, endpoint, response, close)
}

/// Write `response` (forcing `Connection: close` when asked) and pick
/// the follow-up turn. The endpoint is only used to account write
/// failures; successful responses were already recorded by the caller
/// unless this is a protocol-level error path.
fn answer(
    shared: &Shared,
    client: &mut ClientConn,
    endpoint: Endpoint,
    mut response: Response,
    close: bool,
) -> Turn {
    response.close = close;
    // Protocol-level errors (413/400/408 before routing) bypass the
    // route() accounting; record them here so /stats sees everything.
    if endpoint == Endpoint::Other {
        shared
            .stats
            .record(endpoint, response.status, Duration::ZERO);
    }
    match client.conn.write_response(&response) {
        Ok(()) if !close => Turn::Park,
        _ => Turn::Close,
    }
}

/// Identity for rate limiting: the `X-Client-Id` header, else peer IP.
fn client_identity(client: &ClientConn, request: &Request) -> String {
    match request.header("x-client-id") {
        Some(id) if !id.is_empty() => id.to_string(),
        _ => client.conn.peer().ip().to_string(),
    }
}

fn route(shared: &Shared, client: &mut ClientConn, request: &Request) -> (Endpoint, Response) {
    let endpoint = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Endpoint::Healthz,
        ("GET", "/stats") => Endpoint::Stats,
        ("POST", "/query") => Endpoint::Query,
        ("POST", "/prepare") => Endpoint::Prepare,
        ("POST", "/execute") => Endpoint::Execute,
        ("POST", "/ingest") => Endpoint::Ingest,
        (_, "/healthz" | "/stats" | "/query" | "/prepare" | "/execute" | "/ingest") => {
            let err = ApiError::new(
                405,
                "METHOD_NOT_ALLOWED",
                format!("{} is not supported on {}", request.method, request.path),
            );
            return (Endpoint::Other, err.response());
        }
        (_, path) => {
            let err = ApiError::new(404, "NOT_FOUND", format!("no such endpoint {path:?}"));
            return (Endpoint::Other, err.response());
        }
    };

    if shared.shutdown.load(Ordering::SeqCst) {
        let err = ApiError::new(503, "SHUTTING_DOWN", "server is draining");
        return (endpoint, err.response());
    }

    // Health and stats stay reachable for monitors even when a client
    // identity is throttled.
    if !matches!(endpoint, Endpoint::Healthz | Endpoint::Stats) {
        if let Some(limiter) = &shared.limiter {
            let identity = client_identity(client, request);
            if let Err(retry_after) = limiter.try_acquire(&identity) {
                let err = ApiError::new(
                    429,
                    "RATE_LIMITED",
                    format!("client {identity:?} is over its request budget"),
                );
                let response = err
                    .response()
                    .with_header("Retry-After", retry_after.to_string());
                return (endpoint, response);
            }
        }
    }

    let response = match endpoint {
        Endpoint::Healthz => handle_healthz(shared),
        Endpoint::Stats => handle_stats(shared),
        Endpoint::Query => handle_query(shared, request),
        Endpoint::Prepare => handle_prepare(shared, client, request),
        Endpoint::Execute => handle_execute(shared, client, request),
        Endpoint::Ingest => handle_ingest(shared, request),
        Endpoint::Other => unreachable!("handled above"),
    };
    (endpoint, response)
}

fn handle_healthz(shared: &Shared) -> Response {
    Response::json(
        200,
        obj([
            ("status", Json::Str("ok".into())),
            ("lines", Json::Num(shared.session.line_count() as f64)),
        ])
        .render(),
    )
}

fn handle_stats(shared: &Shared) -> Response {
    let pool = shared.session.pool_stats();
    let cache = shared.session.query_cache_stats();
    let mut body = vec![
        ("server".to_string(), shared.stats.to_json()),
        (
            "pool".to_string(),
            obj([
                ("hits", Json::Num(pool.hits as f64)),
                ("misses", Json::Num(pool.misses as f64)),
                ("writebacks", Json::Num(pool.writebacks as f64)),
                ("evictions", Json::Num(pool.evictions as f64)),
                ("hit_rate", Json::Num(pool.hit_rate())),
            ]),
        ),
        (
            "query_cache".to_string(),
            obj([
                ("hits", Json::Num(cache.hits as f64)),
                ("misses", Json::Num(cache.misses as f64)),
                ("evictions", Json::Num(cache.evictions as f64)),
                ("invalidations", Json::Num(cache.invalidations as f64)),
                ("len", Json::Num(cache.len as f64)),
                ("capacity", Json::Num(cache.capacity as f64)),
            ]),
        ),
    ];
    let ingest = shared.session.ingest_stats();
    body.push((
        "ingest".to_string(),
        obj([
            ("batches", Json::Num(ingest.batches as f64)),
            ("docs", Json::Num(ingest.docs as f64)),
            (
                "wal_records_appended",
                Json::Num(ingest.wal_records_appended as f64),
            ),
            (
                "wal_bytes_logged",
                Json::Num(ingest.wal_bytes_logged as f64),
            ),
            ("wal_fsyncs", Json::Num(ingest.wal_fsyncs as f64)),
            ("replays", Json::Num(ingest.replays as f64)),
            (
                "wal_group_commits",
                Json::Num(ingest.wal_group_commits as f64),
            ),
            (
                "wal_batches_per_fsync",
                Json::Num(ingest.wal_batches_per_fsync),
            ),
            (
                "wal_flush_wait_p95_ms",
                Json::Num(ingest.wal_flush_wait_p95.as_secs_f64() * 1e3),
            ),
            (
                "wal_segments_deleted",
                Json::Num(ingest.wal_segments_deleted as f64),
            ),
            ("checkpoints", Json::Num(ingest.checkpoints as f64)),
            (
                "background_checkpoints",
                Json::Num(ingest.background_checkpoints as f64),
            ),
        ]),
    ));
    if let Some(limiter) = &shared.limiter {
        body.push((
            "rate_limiter".to_string(),
            obj([
                ("burst", Json::Num(limiter.limit().burst as f64)),
                ("per_sec", Json::Num(limiter.limit().per_sec)),
                (
                    "tracked_clients",
                    Json::Num(limiter.tracked_clients() as f64),
                ),
            ]),
        ));
    }
    Response::json(200, Json::Obj(body).render())
}

/// Pull the `"sql"` member out of a request body.
fn sql_of_body(body: &[u8]) -> Result<String, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::new(400, "BAD_REQUEST", "body is not UTF-8"))?;
    let doc = Json::parse(text)
        .map_err(|e| ApiError::new(400, "BAD_REQUEST", format!("body is not JSON: {e}")))?;
    match doc.get("sql").and_then(Json::as_str) {
        Some(sql) => Ok(sql.to_string()),
        None => Err(ApiError::new(
            400,
            "BAD_REQUEST",
            "body must be {\"sql\": \"...\"}",
        )),
    }
}

fn handle_query(shared: &Shared, request: &Request) -> Response {
    let sql = match sql_of_body(&request.body) {
        Ok(sql) => sql,
        Err(err) => return err.response(),
    };
    run_query(shared, || shared.session.sql(&sql))
}

fn handle_prepare(shared: &Shared, client: &mut ClientConn, request: &Request) -> Response {
    let sql = match sql_of_body(&request.body) {
        Ok(sql) => sql,
        Err(err) => return err.response(),
    };
    match shared.session.prepare(&sql) {
        Ok(prepared) => {
            let body = obj([
                ("statement_id", Json::Num(client.prepared.len() as f64)),
                ("param_count", Json::Num(prepared.param_count() as f64)),
                ("sql", Json::Str(prepared.sql())),
            ]);
            client.prepared.push(prepared);
            Response::json(200, body.render())
        }
        Err(e) => ApiError::from_query_error(&e).response(),
    }
}

/// JSON params → [`SqlValue`]s: strings bind as text, integral numbers
/// as integers (`LIMIT`/`OFFSET` slots), other numbers as floats.
fn params_of_json(doc: &Json) -> Result<Vec<SqlValue>, ApiError> {
    let items = match doc.get("params") {
        None => return Ok(Vec::new()),
        Some(value) => value
            .as_array()
            .ok_or_else(|| ApiError::new(400, "BAD_REQUEST", "\"params\" must be an array"))?,
    };
    items
        .iter()
        .map(|item| match item {
            Json::Str(s) => Ok(SqlValue::Text(s.clone())),
            Json::Num(_) => Ok(match item.as_u64() {
                Some(n) => SqlValue::Int(n),
                None => SqlValue::Number(item.as_f64().expect("is a number")),
            }),
            other => Err(ApiError::new(
                400,
                "BAD_REQUEST",
                format!("parameters must be strings or numbers, not {other}"),
            )),
        })
        .collect()
}

fn handle_execute(shared: &Shared, client: &mut ClientConn, request: &Request) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return ApiError::new(400, "BAD_REQUEST", "body is not UTF-8").response(),
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => {
            return ApiError::new(400, "BAD_REQUEST", format!("body is not JSON: {e}")).response()
        }
    };
    let Some(id) = doc.get("statement_id").and_then(Json::as_u64) else {
        return ApiError::new(
            400,
            "BAD_REQUEST",
            "body must be {\"statement_id\": n, \"params\": [...]}",
        )
        .response();
    };
    let params = match params_of_json(&doc) {
        Ok(params) => params,
        Err(err) => return err.response(),
    };
    let Some(prepared) = client.prepared.get(id as usize) else {
        return ApiError::new(
            404,
            "UNKNOWN_STATEMENT",
            format!(
                "statement {id} was not prepared on this connection ({} known)",
                client.prepared.len()
            ),
        )
        .response();
    };
    // Clone out of `client` so the borrow does not outlive the call.
    let prepared = prepared.clone();
    run_query(shared, || {
        shared.session.execute_prepared(&prepared, &params)
    })
}

/// Run a query closure under the wall-clock limit and render it.
fn run_query(
    shared: &Shared,
    run: impl FnOnce() -> Result<QueryOutput, staccato_query::QueryError>,
) -> Response {
    let started = Instant::now();
    let result = run();
    let elapsed = started.elapsed();
    if elapsed > shared.config.query_wall_limit {
        let err = ApiError::new(
            408,
            "QUERY_TIMEOUT",
            format!(
                "query ran {}ms; the limit is {}ms (result discarded)",
                elapsed.as_millis(),
                shared.config.query_wall_limit.as_millis()
            ),
        );
        return err.response();
    }
    match result {
        Ok(output) => Response::json(200, output_json(&output).render()),
        Err(e) => ApiError::from_query_error(&e).response(),
    }
}

/// The `POST /query` / `POST /execute` success body.
fn output_json(output: &QueryOutput) -> Json {
    let rows = output
        .answers
        .iter()
        .map(|a| {
            obj([
                ("key", Json::Num(a.data_key as f64)),
                ("prob", Json::Num(a.probability)),
            ])
        })
        .collect();
    let mut members = vec![
        ("rows".to_string(), Json::Arr(rows)),
        (
            "row_count".to_string(),
            Json::Num(output.answers.len() as f64),
        ),
        ("plan".to_string(), Json::Str(output.plan.kind().into())),
        (
            "stats".to_string(),
            obj([
                ("rows_scanned", Json::Num(output.stats.rows_scanned as f64)),
                (
                    "lines_evaluated",
                    Json::Num(output.stats.lines_evaluated as f64),
                ),
                (
                    "postings_probed",
                    Json::Num(output.stats.postings_probed as f64),
                ),
                (
                    "plan_us",
                    Json::Num(output.stats.plan_wall.as_micros() as f64),
                ),
                (
                    "exec_us",
                    Json::Num(output.stats.exec_wall.as_micros() as f64),
                ),
                (
                    "pool",
                    obj([
                        ("hits", Json::Num(output.stats.pool.hits as f64)),
                        ("misses", Json::Num(output.stats.pool.misses as f64)),
                        ("evictions", Json::Num(output.stats.pool.evictions as f64)),
                    ]),
                ),
            ]),
        ),
    ];
    if let Some(agg) = &output.aggregate {
        members.push((
            "aggregate".to_string(),
            obj([
                ("func", Json::Str(agg.func.sql_name().into())),
                ("value", Json::Num(agg.value)),
            ]),
        ));
    }
    if let Some(explain) = &output.explain {
        members.push(("explain".to_string(), Json::Str(explain.clone())));
    }
    if let Some(receipt) = &output.ingest {
        members.push((
            "ingest".to_string(),
            obj([
                ("batch_seq", Json::Num(receipt.batch_seq as f64)),
                ("first_key", Json::Num(receipt.first_key as f64)),
                ("docs", Json::Num(receipt.docs as f64)),
                ("wal_bytes", Json::Num(receipt.wal_bytes as f64)),
                ("lsn", Json::Num(receipt.lsn as f64)),
            ]),
        ));
    }
    if let Some(history) = &output.history {
        let rows = history
            .iter()
            .map(|r| {
                obj([
                    ("key", Json::Num(r.data_key as f64)),
                    ("file_name", Json::Str(r.file_name.clone())),
                    ("provider", Json::Str(r.provider.clone())),
                    ("confidence", Json::Num(r.confidence)),
                    ("processing_time_ms", Json::Num(r.processing_time_ms as f64)),
                    ("ingested_at", Json::Num(r.ingested_at as f64)),
                    ("batch_seq", Json::Num(r.batch_seq as f64)),
                ])
            })
            .collect();
        members.push(("history".to_string(), Json::Arr(rows)));
    }
    Json::Obj(members)
}

/// Parse the `POST /ingest` body:
/// `{"documents": [{"name": "...", "text": "...", ...}]}`.
fn batch_of_body(body: &[u8]) -> Result<IngestBatch, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::new(400, "BAD_REQUEST", "body is not UTF-8"))?;
    let doc = Json::parse(text)
        .map_err(|e| ApiError::new(400, "BAD_REQUEST", format!("body is not JSON: {e}")))?;
    let items = doc
        .get("documents")
        .and_then(Json::as_array)
        .ok_or_else(|| {
            ApiError::new(
                400,
                "BAD_REQUEST",
                "body must be {\"documents\": [{\"name\": \"...\", \"text\": \"...\"}]}",
            )
        })?;
    let mut batch = IngestBatch::new();
    for (i, item) in items.iter().enumerate() {
        let name = item.get("name").and_then(Json::as_str).ok_or_else(|| {
            ApiError::new(
                400,
                "BAD_REQUEST",
                format!("document {i} is missing a string \"name\""),
            )
        })?;
        let text = item.get("text").and_then(Json::as_str).ok_or_else(|| {
            ApiError::new(
                400,
                "BAD_REQUEST",
                format!("document {i} is missing a string \"text\""),
            )
        })?;
        // Provenance defaults to the entry path; an explicit engine
        // name from the client overrides it.
        let mut input = DocumentInput::new(name, text).provider("http");
        if let Some(provider) = item.get("provider").and_then(Json::as_str) {
            input.provider = provider.to_string();
        }
        if let Some(confidence) = item.get("confidence").and_then(Json::as_f64) {
            if !(0.0..=1.0).contains(&confidence) {
                return Err(ApiError::new(
                    400,
                    "BAD_REQUEST",
                    format!("document {i}: confidence {confidence} is outside [0, 1]"),
                ));
            }
            input.confidence = confidence;
        }
        if let Some(ms) = item.get("processing_time_ms").and_then(Json::as_u64) {
            input.processing_time_ms = ms as i64;
        }
        batch = batch.doc(input);
    }
    Ok(batch)
}

fn handle_ingest(shared: &Shared, request: &Request) -> Response {
    let batch = match batch_of_body(&request.body) {
        Ok(batch) => batch,
        Err(err) => return err.response(),
    };
    match shared.session.ingest(batch) {
        Ok(receipt) => Response::json(
            200,
            obj([
                ("batch_seq", Json::Num(receipt.batch_seq as f64)),
                ("first_key", Json::Num(receipt.first_key as f64)),
                ("docs", Json::Num(receipt.docs as f64)),
                ("wal_bytes", Json::Num(receipt.wal_bytes as f64)),
                ("lsn", Json::Num(receipt.lsn as f64)),
            ])
            .render(),
        ),
        Err(e) => ApiError::from_query_error(&e).response(),
    }
}
