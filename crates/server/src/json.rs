//! A small JSON value type with a recursive-descent parser and an
//! escaping writer — the wire format of the service tier, hand-rolled
//! because the container pins the workspace to in-tree dependencies
//! (no `serde`).
//!
//! The subset is exactly RFC 8259: objects, arrays, strings (with the
//! full `\uXXXX` escape set, including surrogate pairs), numbers as
//! `f64`, booleans, `null`. Two deliberate liberties on the *writer*
//! side keep output valid everywhere: non-finite numbers render as
//! `null`, and object keys preserve insertion order (the type is a
//! `Vec` of pairs, not a map — request bodies here are tiny and order
//! makes responses deterministic and diffable).

use std::fmt;

/// Maximum nesting depth the parser accepts. Request bodies are flat
/// (`{"sql": ...}`), so anything deeper than this is garbage or an
/// attack on the parser's stack.
const MAX_DEPTH: usize = 64;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; JSON does not distinguish integers.
    Num(f64),
    /// A string (already unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset where it was noticed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Member lookup (first match) when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact string (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Numbers print as integers when they are integers (within `i64`
/// range) so `"row_count":3` never becomes `"row_count":3.0`; anything
/// non-finite degrades to `null` because JSON has no spelling for it.
fn write_num(v: f64, out: &mut String) {
    use fmt::Write as _;
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nests too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character {:?}", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Json::Obj(members));
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue; // unicode_escape consumed its digits
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar; input is a &str so the
                    // boundaries are valid by construction.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (cursor already past the `u`),
    /// joining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if !(self.eat(b'\\') && self.eat(b'u')) {
                return Err(self.error("unpaired surrogate escape"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.error("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"));
        }
        char::from_u32(hi).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.error("expected 4 hex digits")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let _ = self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("bad number {text:?}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Build an object from `(key, value)` pairs — the common case when
/// assembling a response body.
pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_value_zoo() {
        let src = r#"{"a":[1,2.5,-3,1e3],"b":{"nested":true},"c":null,"d":"q\"\\\né"}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(v.get("d").unwrap().as_str().unwrap(), "q\"\\\né");
        // render → parse is identity.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.5).render(), "3.5");
        assert_eq!(Json::Num(-42.0).render(), "-42");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
        // Unpaired high surrogate is rejected.
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01x",
            "\"\u{1}\"",
            "{} {}",
            "[1] 2",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        // Depth bomb stops at the limit instead of blowing the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn control_characters_escape_on_output() {
        let v = Json::Str("a\u{01}b\tc".into());
        assert_eq!(v.render(), "\"a\\u0001b\\tc\"");
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn as_u64_is_strict() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("5".into()).as_u64(), None);
    }
}
