//! Stable wire error codes.
//!
//! Every non-2xx response carries `{"error":{"code":"...","message":
//! "..."}}`. The `code` strings are the API contract — clients switch
//! on them, so they never change even when the human-readable message
//! does. [`QueryError`] variants map onto codes 1:1; the server layer
//! adds its own codes for protocol-level failures (size caps, rate
//! limits, timeouts, shutdown).

use crate::http::Response;
use crate::json::{obj, Json};
use staccato_query::QueryError;

/// One API-visible error: an HTTP status plus a stable machine code.
#[derive(Debug)]
pub struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable machine-readable code (the contract).
    pub code: &'static str,
    /// Human-readable detail (not contractual).
    pub message: String,
}

impl ApiError {
    /// A new error.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code,
            message: message.into(),
        }
    }

    /// Map a query-layer failure to its wire code. Client mistakes
    /// (bad SQL, bad pattern, unservable index demands) are 4xx;
    /// engine-side corruption and storage failures are 5xx.
    pub fn from_query_error(e: &QueryError) -> ApiError {
        let (status, code) = match e {
            QueryError::Sql(_) => (400, "SQL_PARSE"),
            QueryError::Pattern(_) => (400, "BAD_PATTERN"),
            QueryError::NotAnchored(_) => (400, "NOT_ANCHORED"),
            QueryError::TermNotInDictionary(_) => (400, "TERM_NOT_IN_DICTIONARY"),
            QueryError::NoUsableIndex(_) => (400, "NO_USABLE_INDEX"),
            QueryError::DuplicateIndex(_) => (409, "DUPLICATE_INDEX"),
            QueryError::Ingest(_) => (400, "BAD_INGEST"),
            QueryError::Storage(_) => (500, "STORAGE"),
            QueryError::Sfa(_) => (500, "CORRUPT_SFA"),
            QueryError::MissingRepresentation(_) => (500, "MISSING_REPRESENTATION"),
            QueryError::CorruptWal(_) => (500, "CORRUPT_WAL"),
        };
        ApiError::new(status, code, e.to_string())
    }

    /// The JSON body.
    pub fn body(&self) -> String {
        obj([(
            "error",
            obj([
                ("code", Json::Str(self.code.to_string())),
                ("message", Json::Str(self.message.clone())),
            ]),
        )])
        .render()
    }

    /// The full response.
    pub fn response(&self) -> Response {
        Response::json(self.status, self.body())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staccato_query::SqlError;

    #[test]
    fn query_errors_map_to_stable_codes() {
        let cases: Vec<(QueryError, u16, &str)> = vec![
            (QueryError::Sql(SqlError::new(3, "nope")), 400, "SQL_PARSE"),
            (QueryError::NotAnchored("(a|b)".into()), 400, "NOT_ANCHORED"),
            (
                QueryError::TermNotInDictionary("ford".into()),
                400,
                "TERM_NOT_IN_DICTIONARY",
            ),
            (
                QueryError::NoUsableIndex("why".into()),
                400,
                "NO_USABLE_INDEX",
            ),
            (
                QueryError::DuplicateIndex("inv".into()),
                409,
                "DUPLICATE_INDEX",
            ),
            (
                QueryError::MissingRepresentation("map"),
                500,
                "MISSING_REPRESENTATION",
            ),
        ];
        for (err, status, code) in cases {
            let api = ApiError::from_query_error(&err);
            assert_eq!((api.status, api.code), (status, code), "{err}");
        }
    }

    #[test]
    fn body_is_the_documented_envelope() {
        let api = ApiError::new(429, "RATE_LIMITED", "slow \"down\"");
        let parsed = Json::parse(&api.body()).unwrap();
        let e = parsed.get("error").unwrap();
        assert_eq!(e.get("code").unwrap().as_str(), Some("RATE_LIMITED"));
        assert_eq!(e.get("message").unwrap().as_str(), Some("slow \"down\""));
    }
}
