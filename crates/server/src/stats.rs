//! Server-side observability: per-endpoint request counters and
//! latency percentiles, cheap enough to update on every request.
//!
//! Each endpoint keeps a fixed ring of the most recent request
//! latencies (microseconds); `GET /stats` computes p50/p95/p99 over
//! whatever the ring holds at that moment. A ring, not a histogram:
//! at ≤ `RING_CAPACITY` samples the copy-and-sort on demand costs
//! microseconds, is exact, and needs no bucket tuning.

use crate::json::{obj, Json};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Latency samples retained per endpoint.
const RING_CAPACITY: usize = 4096;

#[derive(Debug, Default)]
struct LatencyRing {
    samples_us: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        if self.samples_us.len() < RING_CAPACITY {
            self.samples_us.push(us);
        } else {
            self.samples_us[self.next] = us;
            self.next = (self.next + 1) % RING_CAPACITY;
        }
    }

    /// `(p50, p95, p99)` in microseconds over the retained window.
    fn percentiles(&self) -> (u64, u64, u64) {
        if self.samples_us.is_empty() {
            return (0, 0, 0);
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let at = |p: f64| {
            let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        (at(0.50), at(0.95), at(0.99))
    }
}

/// Counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointStats {
    requests: AtomicU64,
    errors_4xx: AtomicU64,
    errors_5xx: AtomicU64,
    rate_limited: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

impl EndpointStats {
    /// Account one finished request.
    pub fn record(&self, status: u16, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match status {
            429 => {
                self.rate_limited.fetch_add(1, Ordering::Relaxed);
            }
            400..=499 => {
                self.errors_4xx.fetch_add(1, Ordering::Relaxed);
            }
            500..=599 => {
                self.errors_5xx.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        self.latencies
            .lock()
            .expect("latency ring poisoned")
            .record(latency);
    }

    fn to_json(&self) -> Json {
        let (p50, p95, p99) = self
            .latencies
            .lock()
            .expect("latency ring poisoned")
            .percentiles();
        obj([
            (
                "requests",
                Json::Num(self.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "errors_4xx",
                Json::Num(self.errors_4xx.load(Ordering::Relaxed) as f64),
            ),
            (
                "errors_5xx",
                Json::Num(self.errors_5xx.load(Ordering::Relaxed) as f64),
            ),
            (
                "rate_limited",
                Json::Num(self.rate_limited.load(Ordering::Relaxed) as f64),
            ),
            ("p50_us", Json::Num(p50 as f64)),
            ("p95_us", Json::Num(p95 as f64)),
            ("p99_us", Json::Num(p99 as f64)),
        ])
    }
}

/// The endpoints the service tracks. A fixed set so the hot path is an
/// array index, not a map lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /query`.
    Query,
    /// `POST /prepare`.
    Prepare,
    /// `POST /execute`.
    Execute,
    /// `POST /ingest`.
    Ingest,
    /// `GET /healthz`.
    Healthz,
    /// `GET /stats`.
    Stats,
    /// Anything else (404s, bad methods, malformed requests).
    Other,
}

const ENDPOINTS: [(Endpoint, &str); 7] = [
    (Endpoint::Query, "query"),
    (Endpoint::Prepare, "prepare"),
    (Endpoint::Execute, "execute"),
    (Endpoint::Ingest, "ingest"),
    (Endpoint::Healthz, "healthz"),
    (Endpoint::Stats, "stats"),
    (Endpoint::Other, "other"),
];

/// Whole-server counters.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    endpoints: [EndpointStats; 7],
    in_flight: AtomicU64,
    connections_accepted: AtomicU64,
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats {
            started: Instant::now(),
            endpoints: Default::default(),
            in_flight: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
        }
    }
}

impl ServerStats {
    /// Account one finished request against its endpoint.
    pub fn record(&self, endpoint: Endpoint, status: u16, latency: Duration) {
        self.endpoints[Self::index(endpoint)].record(status, latency);
    }

    fn index(endpoint: Endpoint) -> usize {
        ENDPOINTS
            .iter()
            .position(|(e, _)| *e == endpoint)
            .expect("every endpoint is in the table")
    }

    /// One connection accepted.
    pub fn connection_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Enter/leave the in-flight window around request handling.
    pub fn begin_request(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// See [`ServerStats::begin_request`].
    pub fn end_request(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// The `GET /stats` fragment this struct owns (the server adds the
    /// session's pool/cache counters beside it).
    pub fn to_json(&self) -> Json {
        let endpoints = ENDPOINTS
            .iter()
            .map(|(endpoint, name)| {
                (
                    name.to_string(),
                    self.endpoints[Self::index(*endpoint)].to_json(),
                )
            })
            .collect();
        obj([
            (
                "uptime_secs",
                Json::Num(self.started.elapsed().as_secs_f64()),
            ),
            (
                "connections_accepted",
                Json::Num(self.connections_accepted.load(Ordering::Relaxed) as f64),
            ),
            (
                "in_flight",
                Json::Num(self.in_flight.load(Ordering::Relaxed) as f64),
            ),
            ("endpoints", Json::Obj(endpoints)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_a_known_distribution() {
        let ring = {
            let mut ring = LatencyRing::default();
            // 1..=100 microseconds, shuffled order must not matter.
            for v in (1..=100u64).rev() {
                ring.record(Duration::from_micros(v));
            }
            ring
        };
        let (p50, p95, p99) = ring.percentiles();
        assert_eq!((p50, p95, p99), (50, 95, 99));
    }

    #[test]
    fn ring_keeps_only_the_recent_window() {
        let mut ring = LatencyRing::default();
        for _ in 0..RING_CAPACITY {
            ring.record(Duration::from_micros(1_000_000));
        }
        // Overwrite the whole window with fast samples.
        for _ in 0..RING_CAPACITY {
            ring.record(Duration::from_micros(10));
        }
        assert_eq!(ring.percentiles(), (10, 10, 10));
    }

    #[test]
    fn statuses_land_in_the_right_counters() {
        let stats = ServerStats::default();
        stats.record(Endpoint::Query, 200, Duration::from_micros(5));
        stats.record(Endpoint::Query, 400, Duration::from_micros(5));
        stats.record(Endpoint::Query, 429, Duration::from_micros(5));
        stats.record(Endpoint::Query, 500, Duration::from_micros(5));
        let json = stats.to_json();
        let q = json.get("endpoints").unwrap().get("query").unwrap();
        assert_eq!(q.get("requests").unwrap().as_u64(), Some(4));
        assert_eq!(q.get("errors_4xx").unwrap().as_u64(), Some(1));
        assert_eq!(q.get("errors_5xx").unwrap().as_u64(), Some(1));
        assert_eq!(q.get("rate_limited").unwrap().as_u64(), Some(1));
        let empty = json.get("endpoints").unwrap().get("healthz").unwrap();
        assert_eq!(empty.get("requests").unwrap().as_u64(), Some(0));
    }
}
