//! # staccato-bench
//!
//! Shared harness for the experiment drivers (`src/bin/experiments.rs`,
//! one sub-command per table/figure of the paper) and the Criterion
//! micro-benchmarks in `benches/`.
//!
//! * [`workload`] — the paper's Table 6 query workload (7 queries per
//!   dataset: 5 keywords + 2 regexes) and dictionary construction;
//! * [`mem`] — an in-memory representation cache for parameter sweeps:
//!   full SFAs are built once per corpus and k-MAP/Staccato variants are
//!   derived (and memoized) per `(m, k)`, with blobs kept *encoded* so
//!   every evaluation pays the same decode cost a buffer-pool read would;
//! * [`timing`] — median-of-N wall-clock measurement (the paper averages
//!   over 7 runs).

pub mod mem;
pub mod timing;
pub mod workload;

pub use mem::MemCorpus;
pub use timing::time_median;
pub use workload::{corpus_dictionary, table6_queries, QuerySpec};
