//! The paper's query workload (Table 6) and dictionary construction.

use staccato_ocr::{CorpusKind, Dataset};
use std::collections::BTreeSet;

/// One workload query.
#[derive(Debug, Clone, Copy)]
pub struct QuerySpec {
    /// Identifier matching Table 6 (e.g. "CA1").
    pub id: &'static str,
    /// Pattern in the paper's regex dialect.
    pub pattern: &'static str,
    /// Whether Table 6 classifies it as a keyword query.
    pub keyword: bool,
}

/// The 21 queries of Table 6, keyed by dataset.
pub fn table6_queries(kind: CorpusKind) -> Vec<QuerySpec> {
    match kind {
        CorpusKind::CongressActs => vec![
            QuerySpec {
                id: "CA1",
                pattern: "Attorney",
                keyword: true,
            },
            QuerySpec {
                id: "CA2",
                pattern: "Commission",
                keyword: true,
            },
            QuerySpec {
                id: "CA3",
                pattern: "employment",
                keyword: true,
            },
            QuerySpec {
                id: "CA4",
                pattern: "President",
                keyword: true,
            },
            QuerySpec {
                id: "CA5",
                pattern: "United States",
                keyword: true,
            },
            QuerySpec {
                id: "CA6",
                pattern: r"Public Law (8|9)\d",
                keyword: false,
            },
            QuerySpec {
                id: "CA7",
                pattern: r"U.S.C. 2\d\d\d",
                keyword: false,
            },
        ],
        CorpusKind::DbPapers => vec![
            QuerySpec {
                id: "DB1",
                pattern: "accuracy",
                keyword: true,
            },
            QuerySpec {
                id: "DB2",
                pattern: "confidence",
                keyword: true,
            },
            QuerySpec {
                id: "DB3",
                pattern: "database",
                keyword: true,
            },
            QuerySpec {
                id: "DB4",
                pattern: "lineage",
                keyword: true,
            },
            QuerySpec {
                id: "DB5",
                pattern: "Trio",
                keyword: true,
            },
            QuerySpec {
                id: "DB6",
                pattern: r"Sec(\x)*\d",
                keyword: false,
            },
            QuerySpec {
                id: "DB7",
                pattern: r"\x\x\x\d\d",
                keyword: false,
            },
        ],
        CorpusKind::EnglishLit => vec![
            QuerySpec {
                id: "LT1",
                pattern: "Brinkmann",
                keyword: true,
            },
            QuerySpec {
                id: "LT2",
                pattern: "Hitler",
                keyword: true,
            },
            QuerySpec {
                id: "LT3",
                pattern: "Jonathan",
                keyword: true,
            },
            QuerySpec {
                id: "LT4",
                pattern: "Kerouac",
                keyword: true,
            },
            QuerySpec {
                id: "LT5",
                pattern: "Third Reich",
                keyword: true,
            },
            QuerySpec {
                id: "LT6",
                pattern: r"19\d\d, \d\d",
                keyword: false,
            },
            QuerySpec {
                id: "LT7",
                pattern: r"spontan(\x)*",
                keyword: false,
            },
        ],
        CorpusKind::Books => vec![
            QuerySpec {
                id: "GB1",
                pattern: "President",
                keyword: true,
            },
            QuerySpec {
                id: "GB2",
                pattern: r"Public Law (8|9)\d",
                keyword: false,
            },
        ],
    }
}

/// Build the index dictionary: every word of the clean corpus (the
/// "known clean text corpus" source of §4) plus `filler` synthetic terms
/// standing in for the rest of the paper's ~60,000-word English list —
/// they exercise trie size without changing which postings exist.
pub fn corpus_dictionary(dataset: &Dataset, filler: usize) -> Vec<String> {
    let mut terms: BTreeSet<String> = BTreeSet::new();
    for (_, _, line) in dataset.lines() {
        for w in line.split(|c: char| !c.is_ascii_alphabetic()) {
            if w.len() >= 2 {
                terms.insert(w.to_ascii_lowercase());
            }
        }
    }
    let mut out: Vec<String> = terms.into_iter().collect();
    for i in 0..filler {
        out.push(format!("zfill{i:06}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use staccato_ocr::generate;

    #[test]
    fn twenty_one_paper_queries() {
        let total: usize = [
            CorpusKind::CongressActs,
            CorpusKind::EnglishLit,
            CorpusKind::DbPapers,
        ]
        .iter()
        .map(|&k| table6_queries(k).len())
        .sum();
        assert_eq!(total, 21);
    }

    #[test]
    fn queries_parse_in_the_dialect() {
        for kind in [
            CorpusKind::CongressActs,
            CorpusKind::EnglishLit,
            CorpusKind::DbPapers,
            CorpusKind::Books,
        ] {
            for q in table6_queries(kind) {
                staccato_query::Query::regex(q.pattern)
                    .unwrap_or_else(|e| panic!("{} failed to parse: {e}", q.id));
            }
        }
    }

    #[test]
    fn dictionary_contains_anchor_terms() {
        let d = generate(CorpusKind::CongressActs, 300, 4);
        let dict = corpus_dictionary(&d, 100);
        assert!(dict.iter().any(|t| t == "public"));
        assert!(dict.iter().any(|t| t == "president"));
        assert!(dict.iter().any(|t| t.starts_with("zfill")));
        // Terms are unique and lowercase.
        let set: BTreeSet<&String> = dict.iter().collect();
        assert_eq!(set.len(), dict.len());
    }
}
