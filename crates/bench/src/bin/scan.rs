//! Scan-kernel microbench: per-line evaluation cost of the naive
//! reference path (owned-row cursors + `eval_strings` / decode +
//! `eval_sfa`) against the compiled [`ScanKernel`] (dense DFA, interned
//! label transitions, arena decode, anchor prescreen), per
//! representation and per query.
//!
//! ```text
//! scan [--lines N] [--seed S] [--reps R] [--out PATH]
//! ```
//!
//! Both sides run the identical single-thread loop shape — cursor →
//! per-line probability → bounded top-k — so the measured delta is the
//! evaluation kernel itself, not sink or I/O differences. Every rep
//! asserts the two paths produce bit-identical answer sets before any
//! timing is trusted. `BENCH_scan.json` records min-of-reps ns/line per
//! (approach, query), the prescreen skip rate, and a `headline` object
//! (total Staccato speedup across the query set) that CI gates on.
//!
//! [`ScanKernel`]: staccato_query::ScanKernel

use staccato_core::StaccatoParams;
use staccato_ocr::{generate, ChannelConfig, CorpusKind};
use staccato_query::store::{LoadOptions, OcrStore};
use staccato_query::{eval_sfa, eval_strings, Answer, Approach, Query, ScanScratch, TopK};
use staccato_sfa::codec;
use staccato_storage::Database;
use std::time::Instant;

/// The query mix: anchored keywords (prescreen-friendly), a LIKE
/// containment, a disjunctive regex, and a stopword whose literal is
/// everywhere (prescreen rarely skips — the kernel must win on raw
/// evaluation speed there, not on skipping).
const QUERIES: &[(&str, &str, bool)] = &[
    ("president", "President", false),
    ("commission", "%Commission%", true),
    ("public-law", r"Public Law (8|9)\d", false),
    ("the", "the", false),
];

struct Config {
    lines: usize,
    seed: u64,
    reps: usize,
    out: String,
}

/// One measured (approach, query) cell.
struct Cell {
    approach: &'static str,
    query: &'static str,
    lines: u64,
    naive_ns_per_line: f64,
    kernel_ns_per_line: f64,
    prescreen_skip_rate: f64,
}

fn main() {
    let mut cfg = Config {
        lines: 300,
        seed: 42,
        reps: 3,
        out: "BENCH_scan.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match a.as_str() {
            "--lines" => cfg.lines = next("--lines").parse().expect("lines"),
            "--seed" => cfg.seed = next("--seed").parse().expect("seed"),
            "--reps" => cfg.reps = next("--reps").parse().expect("reps"),
            "--out" => cfg.out = next("--out").clone(),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(cfg.lines >= 1 && cfg.reps >= 1);

    eprintln!(
        "loading {} lines of CongressActs (seed {}) ...",
        cfg.lines, cfg.seed
    );
    let dataset = generate(CorpusKind::CongressActs, cfg.lines, cfg.seed);
    // A pool big enough to keep the corpus resident: this bench measures
    // evaluation cost, not buffer-pool behaviour (BENCH_throughput owns
    // that axis).
    let db = Database::in_memory(4096).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(cfg.seed),
        kmap_k: 8,
        staccato: StaccatoParams::new(10, 8),
        parallelism: 2,
    };
    let store = OcrStore::load(db, &dataset, &opts).expect("load");

    let mut cells: Vec<Cell> = Vec::new();
    for &(name, pattern, is_like) in QUERIES {
        let q = if is_like {
            Query::like(pattern)
        } else {
            Query::regex(pattern)
        }
        .expect("bench pattern compiles");
        for approach in Approach::all() {
            // Correctness first: the kernel must reproduce the naive
            // answer relation bit-for-bit before its timing means
            // anything.
            let (naive_answers, lines) = naive_scan(&store, approach, &q);
            let (kernel_answers, _, skipped) = kernel_scan(&store, approach, &q);
            assert_eq!(
                naive_answers.len(),
                kernel_answers.len(),
                "{name}/{}: answer count diverged",
                approach.name()
            );
            for (a, b) in naive_answers.iter().zip(&kernel_answers) {
                assert_eq!(a.data_key, b.data_key, "{name}/{}", approach.name());
                assert_eq!(
                    a.probability.to_bits(),
                    b.probability.to_bits(),
                    "{name}/{}: probability diverged at key {}",
                    approach.name(),
                    a.data_key
                );
            }
            // min-of-reps: the steadiest estimate of the per-line cost.
            let mut naive_best = f64::INFINITY;
            let mut kernel_best = f64::INFINITY;
            for _ in 0..cfg.reps {
                let t = Instant::now();
                let _ = naive_scan(&store, approach, &q);
                naive_best = naive_best.min(t.elapsed().as_nanos() as f64);
                let t = Instant::now();
                let _ = kernel_scan(&store, approach, &q);
                kernel_best = kernel_best.min(t.elapsed().as_nanos() as f64);
            }
            let cell = Cell {
                approach: approach.name(),
                query: name,
                lines,
                naive_ns_per_line: naive_best / lines.max(1) as f64,
                kernel_ns_per_line: kernel_best / lines.max(1) as f64,
                prescreen_skip_rate: skipped as f64 / lines.max(1) as f64,
            };
            eprintln!(
                "{:>8} {:<12} naive {:>12.0} ns/line  kernel {:>12.0} ns/line  ({:>5.2}x, {:>5.1}% prescreened)",
                cell.approach,
                cell.query,
                cell.naive_ns_per_line,
                cell.kernel_ns_per_line,
                cell.naive_ns_per_line / cell.kernel_ns_per_line.max(1e-9),
                cell.prescreen_skip_rate * 100.0
            );
            cells.push(cell);
        }
    }

    // Headline: total Staccato filescan cost across the query set — one
    // ratio, robust to any single query dominating.
    let headline = headline_of(&cells, "STACCATO");
    let fullsfa = headline_of(&cells, "FullSFA");

    let results: Vec<String> = cells.iter().map(cell_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"scan\",\n  \"corpus\": \"CongressActs\",\n  \"lines\": {},\n  \"seed\": {},\n  \"reps\": {},\n  \"queries\": {},\n  \"results\": [\n    {}\n  ],\n  \"headline\": {},\n  \"fullsfa\": {}\n}}\n",
        cfg.lines,
        cfg.seed,
        cfg.reps,
        QUERIES.len(),
        results.join(",\n    "),
        headline,
        fullsfa,
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH json");
    println!("-> {}", cfg.out);
}

/// Sum a representation's naive and kernel cost over the whole query
/// set and emit its summary JSON object.
fn headline_of(cells: &[Cell], approach: &str) -> String {
    let naive: f64 = cells
        .iter()
        .filter(|c| c.approach == approach)
        .map(|c| c.naive_ns_per_line)
        .sum();
    let kernel: f64 = cells
        .iter()
        .filter(|c| c.approach == approach)
        .map(|c| c.kernel_ns_per_line)
        .sum();
    format!(
        "{{\"approach\": \"{}\", \"naive_ns_per_line\": {:.1}, \"kernel_ns_per_line\": {:.1}, \"speedup\": {:.3}}}",
        approach,
        naive,
        kernel,
        naive / kernel.max(1e-9)
    )
}

fn cell_json(c: &Cell) -> String {
    format!(
        "{{\"approach\": \"{}\", \"query\": \"{}\", \"lines\": {}, \"naive_ns_per_line\": {:.1}, \"kernel_ns_per_line\": {:.1}, \"speedup\": {:.3}, \"prescreen_skip_rate\": {:.4}}}",
        c.approach,
        c.query,
        c.lines,
        c.naive_ns_per_line,
        c.kernel_ns_per_line,
        c.naive_ns_per_line / c.kernel_ns_per_line.max(1e-9),
        c.prescreen_skip_rate
    )
}

/// The pre-kernel evaluation path, reconstructed over the public owned
/// cursors: per-row `String`/`Sfa` materialization, `run_from` per label
/// per live state, fresh DP vectors per row.
fn naive_scan(store: &OcrStore, approach: Approach, q: &Query) -> (Vec<Answer>, u64) {
    let mut topk = TopK::new(100);
    let mut lines = 0u64;
    match approach {
        Approach::Map => {
            for item in store.map_cursor().expect("cursor") {
                let (key, s, p) = item.expect("row");
                lines += 1;
                topk.push(Answer {
                    data_key: key,
                    probability: eval_strings(&q.dfa, std::iter::once((s.as_str(), p))),
                });
            }
        }
        Approach::KMap => {
            for item in store.kmap_cursor().expect("cursor") {
                let (key, strings) = item.expect("row");
                lines += 1;
                topk.push(Answer {
                    data_key: key,
                    probability: eval_strings(
                        &q.dfa,
                        strings.iter().map(|(s, p)| (s.as_str(), *p)),
                    ),
                });
            }
        }
        Approach::FullSfa | Approach::Staccato => {
            let cursor = match approach {
                Approach::FullSfa => store.full_sfa_blobs(),
                _ => store.staccato_blobs(),
            };
            for item in cursor.expect("cursor") {
                let (key, blob) = item.expect("row");
                lines += 1;
                topk.push(Answer {
                    data_key: key,
                    probability: eval_sfa(&q.dfa, &codec::decode(&blob).expect("blob")),
                });
            }
        }
    }
    (topk.into_ranked(), lines)
}

/// The compiled path: the same cursor → evaluate → top-k loop, with
/// per-line evaluation through the query's
/// [`staccato_query::ScanKernel`] and blob rows streamed *borrowed*
/// (one reusable buffer) instead of materialized per row. Returns the
/// prescreen skip count alongside the answers.
fn kernel_scan(store: &OcrStore, approach: Approach, q: &Query) -> (Vec<Answer>, u64, u64) {
    let mut topk = TopK::new(100);
    let mut lines = 0u64;
    let mut skipped = 0u64;
    match approach {
        Approach::Map => {
            for item in store.map_cursor().expect("cursor") {
                let (key, s, p) = item.expect("row");
                lines += 1;
                let out = q.kernel.eval_string(&s, p);
                skipped += u64::from(out.prescreened);
                topk.push(Answer {
                    data_key: key,
                    probability: out.probability,
                });
            }
        }
        Approach::KMap => {
            for item in store.kmap_cursor().expect("cursor") {
                let (key, strings) = item.expect("row");
                lines += 1;
                let out = q
                    .kernel
                    .eval_string_group(strings.iter().map(|(s, p)| (s.as_str(), *p)));
                skipped += u64::from(out.prescreened);
                topk.push(Answer {
                    data_key: key,
                    probability: out.probability,
                });
            }
        }
        Approach::FullSfa | Approach::Staccato => {
            let mut scratch = ScanScratch::new();
            let each = |key: i64, blob: &[u8]| {
                lines += 1;
                let out = q.kernel.eval_blob(&mut scratch, blob).expect("blob");
                skipped += u64::from(out.prescreened);
                topk.push(Answer {
                    data_key: key,
                    probability: out.probability,
                });
                Ok(())
            };
            match approach {
                Approach::FullSfa => store.for_each_full_sfa_blob(each),
                _ => store.for_each_staccato_blob(each),
            }
            .expect("blob visit");
        }
    }
    (topk.into_ranked(), lines, skipped)
}
