//! Experiment harness: one sub-command per table/figure of
//! *Probabilistic Management of OCR Data using an RDBMS* (VLDB 2011).
//!
//! ```text
//! experiments <id> [--lines N] [--seed S] [--reps R] [--full]
//!   id ∈ { t1 t2 t4 f4 f5 f6 f7 f8 f9 f10 f11 f15 f16 f19 all }
//! ```
//!
//! `--full` runs at the paper's dataset scale (Table 2); the default is a
//! quarter scale that finishes in a few minutes. Output is markdown so it
//! can be pasted into EXPERIMENTS.md next to the paper's numbers.

use staccato_bench::mem::{MemCorpus, M_MAX};
use staccato_bench::timing::{fmt_duration, time_median};
use staccato_bench::workload::{corpus_dictionary, table6_queries, QuerySpec};
use staccato_core::{approximate, tune, SizeModel, StaccatoParams, TuningConstraints};
use staccato_ocr::{generate, Channel, ChannelConfig, CorpusKind};
use staccato_query::exec::{Answer, Approach};
use staccato_query::invindex::{direct_posting_count, line_postings, project_eval, Posting};
use staccato_query::metrics::{evaluate_answers, ground_truth, Metrics};
use staccato_query::sql::{lower_statement, parse_statement, quote_str};
use staccato_query::store::LoadOptions;
use staccato_query::{PlanPreference, Query, SqlTable, Staccato};
use staccato_sfa::codec;
use staccato_storage::Database;
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

const NUM_ANS: usize = 100;

#[derive(Clone)]
struct Ctx {
    seed: u64,
    reps: usize,
    full: bool,
    lines_override: Option<usize>,
}

impl Ctx {
    fn lines(&self, kind: CorpusKind) -> usize {
        if let Some(n) = self.lines_override {
            return n;
        }
        let paper = kind.paper_scale();
        if self.full {
            paper
        } else {
            paper / 4
        }
    }

    fn channel(&self) -> ChannelConfig {
        ChannelConfig {
            seed: self.seed,
            ..ChannelConfig::default()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = Ctx {
        seed: 42,
        reps: 3,
        full: false,
        lines_override: None,
    };
    let mut which: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => ctx.full = true,
            "--seed" => ctx.seed = it.next().expect("--seed N").parse().expect("seed"),
            "--reps" => ctx.reps = it.next().expect("--reps N").parse().expect("reps"),
            "--lines" => {
                ctx.lines_override = Some(it.next().expect("--lines N").parse().expect("lines"))
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        eprintln!(
            "usage: experiments <t1|t2|t4|f4|f5|f6|f7|f8|f9|f10|f11|f15|f16|f19|all> \
                   [--lines N] [--seed S] [--reps R] [--full]"
        );
        std::process::exit(2);
    }
    let all = which.iter().any(|w| w == "all");
    let want = |id: &str| all || which.iter().any(|w| w == id);

    println!("# Staccato experiment run");
    println!();
    println!(
        "scale: {} (CA={}, LT={}, DB={}), seed={}, reps={}, NumAns={}",
        if ctx.full {
            "paper (Table 2)"
        } else {
            "quarter"
        },
        ctx.lines(CorpusKind::CongressActs),
        ctx.lines(CorpusKind::EnglishLit),
        ctx.lines(CorpusKind::DbPapers),
        ctx.seed,
        ctx.reps,
        NUM_ANS
    );
    let started = Instant::now();
    if want("t1") {
        e_t1(&ctx);
    }
    if want("t2") {
        e_t2(&ctx);
    }
    if want("t4") {
        e_t4(&ctx);
    }
    if want("f4") {
        e_f4(&ctx);
    }
    if want("f5") {
        e_f5(&ctx);
    }
    if want("f6") {
        e_f6(&ctx, false);
    }
    if want("f7") {
        e_f7(&ctx);
    }
    if want("f8") {
        e_f8(&ctx);
    }
    if want("f9") {
        e_f9(&ctx);
    }
    if want("f10") {
        e_f10(&ctx);
    }
    if want("f11") {
        e_f11(&ctx);
    }
    if want("f15") {
        e_f6(&ctx, true);
    }
    if want("f16") {
        e_f16(&ctx);
    }
    if want("f19") {
        e_f19(&ctx);
    }
    println!();
    println!(
        "_total experiment wall time: {}_",
        fmt_duration(started.elapsed())
    );
}

fn header(title: &str, what: &str) {
    println!();
    println!("## {title}");
    println!();
    println!("{what}");
    println!();
}

fn pr(m: &Metrics) -> String {
    format!("{:.2}/{:.2}", m.precision, m.recall)
}

// ---------------------------------------------------------------- T1 --

/// Table 1: the cost model on a chain SFA — query time should be linear
/// in the data volume of each representation and interpolate linearly in
/// the number of chunks m.
fn e_t1(ctx: &Ctx) {
    header(
        "Table 1 — cost model on a chain SFA",
        "Measured query evaluation time per line vs l (string length) and m (chunks); \
         the paper's model predicts k-MAP ∝ l·q·k, FullSFA ∝ l·q·|Σ|, Staccato between, \
         linear in m.",
    );
    let q = Query::keyword("target").expect("pattern");
    let channel = Channel::new(ctx.channel());
    println!("| l | k-MAP k=25 | STACCATO m=l/4 | STACCATO m=l/2 | FullSFA |");
    println!("|---|---|---|---|---|");
    for l in [20usize, 40, 80, 160] {
        let line: String = "abcdefg hij klmnop qrstu vw xyz "
            .chars()
            .cycle()
            .take(l)
            .collect();
        let sfa = channel.line_to_sfa(&line, l as u64);
        let kmap: Vec<(String, f64)> = staccato_sfa::k_best_paths(&sfa, 25)
            .into_iter()
            .map(|p| (p.string, p.prob))
            .collect();
        let stac_a = approximate(&sfa, StaccatoParams::new((l / 4).max(1), 25));
        let stac_b = approximate(&sfa, StaccatoParams::new((l / 2).max(1), 25));
        let t_kmap = time_median(ctx.reps * 3, || {
            let _ =
                staccato_query::eval_strings(&q.dfa, kmap.iter().map(|(s, p)| (s.as_str(), *p)));
        });
        let t_sa = time_median(ctx.reps * 3, || {
            let _ = staccato_query::eval_sfa(&q.dfa, &stac_a);
        });
        let t_sb = time_median(ctx.reps * 3, || {
            let _ = staccato_query::eval_sfa(&q.dfa, &stac_b);
        });
        let t_full = time_median(ctx.reps * 3, || {
            let _ = staccato_query::eval_sfa(&q.dfa, &sfa);
        });
        println!(
            "| {l} | {} | {} | {} | {} |",
            fmt_duration(t_kmap),
            fmt_duration(t_sa),
            fmt_duration(t_sb),
            fmt_duration(t_full)
        );
    }
    println!();
    println!(
        "Space (bytes) for the l=80 line: kMAP(k=25)={}, STACCATO(m=20,k=25)={}, FullSFA={}",
        {
            let line: String = "abcdefg hij klmnop qrstu vw xyz "
                .chars()
                .cycle()
                .take(80)
                .collect();
            let sfa = channel.line_to_sfa(&line, 80);
            staccato_sfa::k_best_paths(&sfa, 25)
                .iter()
                .map(|p| p.string.len() + 16)
                .sum::<usize>()
        },
        {
            let line: String = "abcdefg hij klmnop qrstu vw xyz "
                .chars()
                .cycle()
                .take(80)
                .collect();
            let sfa = channel.line_to_sfa(&line, 80);
            codec::encoded_size(&approximate(&sfa, StaccatoParams::new(20, 25)))
        },
        {
            let line: String = "abcdefg hij klmnop qrstu vw xyz "
                .chars()
                .cycle()
                .take(80)
                .collect();
            codec::encoded_size(&channel.line_to_sfa(&line, 80))
        }
    );
}

// ---------------------------------------------------------------- T2 --

/// Table 2: dataset statistics.
fn e_t2(ctx: &Ctx) {
    header(
        "Table 2 — dataset statistics",
        "Pages, SFAs, size as SFAs vs size as text (paper: CA 38/1590/533MB/90kB, \
         LT 32/1211/524MB/78kB, DB 16/627/359MB/54kB; sizes scale with the chosen line count).",
    );
    println!("| dataset | pages | SFAs | size as SFAs | size as text | blow-up |");
    println!("|---|---|---|---|---|---|");
    for kind in [
        CorpusKind::CongressActs,
        CorpusKind::EnglishLit,
        CorpusKind::DbPapers,
    ] {
        let corpus = MemCorpus::build(kind, ctx.lines(kind), ctx.seed, ctx.channel());
        let sfa_mb = corpus.full_bytes() as f64 / 1e6;
        let text_kb = corpus.text_bytes() as f64 / 1e3;
        println!(
            "| {} | {} | {} | {:.1} MB | {:.1} kB | {:.0}x |",
            kind.short_name(),
            corpus.dataset.pages(),
            corpus.line_count(),
            sfa_mb,
            text_kb,
            corpus.full_bytes() as f64 / corpus.text_bytes() as f64
        );
    }
}

// ---------------------------------------------------------------- T4 --

/// Table 4 (+ appendix Tables 7/8): precision/recall and runtime for the
/// 21 workload queries through the real storage engine, issued as SQL
/// strings over the representation tables (the paper's §2.3 interface).
fn e_t4(ctx: &Ctx) {
    header(
        "Table 4 / Tables 7–8 — quality and runtime across datasets (RDBMS filescans)",
        "k=25, m=40, NumAns=100, as in the paper; each cell runs \
         `SELECT DataKey, Prob FROM <table> WHERE Data REGEXP '...' LIMIT 100` through \
         `Staccato::sql`. Paper shape: MAP precision 1.0 with recall as low as ~0.3 on \
         regexes; FullSFA recall 1.0 with low precision, 2–3 orders of magnitude slower; \
         Staccato between.",
    );
    for kind in [
        CorpusKind::CongressActs,
        CorpusKind::EnglishLit,
        CorpusKind::DbPapers,
    ] {
        let dataset = generate(kind, ctx.lines(kind), ctx.seed);
        let db = Database::in_memory(8192).expect("db");
        let opts = LoadOptions {
            channel: ctx.channel(),
            kmap_k: 25,
            staccato: StaccatoParams::new(40, 25),
            ..Default::default()
        };
        let t0 = Instant::now();
        let session = Staccato::load(db, &dataset, &opts).expect("load");
        println!();
        println!(
            "### {} ({} lines; loaded in {})",
            kind.short_name(),
            session.line_count(),
            fmt_duration(t0.elapsed())
        );
        println!();
        println!("| query | truth | MAP P/R | k-MAP P/R | FullSFA P/R | STACCATO P/R | MAP t | k-MAP t | FullSFA t | STACCATO t |");
        println!("|---|---|---|---|---|---|---|---|---|---|");
        for spec in table6_queries(kind) {
            let query = Query::regex(spec.pattern).expect("workload pattern");
            let truth = ground_truth(session.store(), &query).expect("truth");
            let mut cells_pr = Vec::new();
            let mut cells_t = Vec::new();
            for ap in Approach::all() {
                let statement = format!(
                    "SELECT DataKey, Prob FROM {} WHERE Data REGEXP {} \
                     ORDER BY Prob DESC LIMIT {NUM_ANS}",
                    SqlTable::of_approach(ap).name(),
                    quote_str(spec.pattern)
                );
                // P/R through the full SQL surface; the runtime cells
                // time the lowered request so every cell measures equal
                // work (parse/lower once, outside the timer — same
                // methodology as f9).
                let answers = session.sql(&statement).expect("query").answers;
                let request =
                    lower_statement(&parse_statement(&statement).expect("parse")).expect("lower");
                let t = time_median(ctx.reps, || {
                    let _: Vec<Answer> = session.execute(&request).expect("query").answers;
                });
                cells_pr.push(pr(&evaluate_answers(&answers, &truth)));
                cells_t.push(fmt_duration(t));
            }
            println!(
                "| {} `{}` | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                spec.id,
                spec.pattern,
                truth.len(),
                cells_pr[0],
                cells_pr[1],
                cells_pr[2],
                cells_pr[3],
                cells_t[0],
                cells_t[1],
                cells_t[2],
                cells_t[3],
            );
        }
    }
}

// ---------------------------------------------------------------- F4 --

/// Figure 4: the recall–runtime scatter for one keyword and one regex
/// query at m=10, k=100.
fn e_f4(ctx: &Ctx) {
    header(
        "Figure 4 — recall vs runtime (m=10, k=100)",
        "Paper shape: MAP fast/low-recall, FullSFA slow/recall-1, Staccato in the middle \
         on both axes.",
    );
    let mut corpus = MemCorpus::build(
        CorpusKind::CongressActs,
        ctx.lines(CorpusKind::CongressActs),
        ctx.seed,
        ctx.channel(),
    );
    println!("| query | engine | recall | runtime |");
    println!("|---|---|---|---|");
    for pattern in ["President", r"U.S.C. 2\d\d\d"] {
        let query = Query::regex(pattern).expect("pattern");
        let truth = corpus.ground_truth(&query);
        let row = |name: &str, answers: Vec<Answer>, t: std::time::Duration| {
            let m = evaluate_answers(&answers, &truth);
            println!(
                "| `{pattern}` | {name} | {:.2} | {} |",
                m.recall,
                fmt_duration(t)
            );
        };
        let _ = corpus.kmap(1); // build outside the timer
        let mut a = Vec::new();
        let t = time_median(ctx.reps, || a = corpus.eval_map(&query, NUM_ANS));
        row("MAP", a, t);
        let _ = corpus.staccato(10, 100); // build outside the timer
        let mut a = Vec::new();
        let t = time_median(ctx.reps, || {
            a = corpus.eval_staccato(10, 100, &query, NUM_ANS)
        });
        row("STACCATO", a, t);
        let mut a = Vec::new();
        let t = time_median(ctx.reps, || a = corpus.eval_full(&query, NUM_ANS));
        row("FullSFA", a, t);
    }
}

// ---------------------------------------------------------------- F5 --

/// Figure 5: direct-indexing posting blow-up on a single SFA.
fn e_f5(ctx: &Ctx) {
    header(
        "Figure 5 — #postings from directly indexing one SFA (log10)",
        "Linear-ish in k at fixed m (A); exponential in m at fixed k (B) — the paper's \
         k=50 series overflows u64 beyond m=60, which motivates dictionary-based indexing.",
    );
    let corpus = MemCorpus::build(CorpusKind::CongressActs, 40, ctx.seed, ctx.channel());
    // Pick the longest line so m can go high.
    let (idx, _) = corpus
        .clean
        .iter()
        .enumerate()
        .max_by_key(|(_, l)| l.len())
        .expect("non-empty corpus");
    let sfa = codec::decode(&corpus.full_blobs[idx]).expect("blob");
    println!("(line has {} transitions)", sfa.edge_count());
    println!();
    println!("| | k=1 | k=10 | k=25 | k=50 | k=75 | k=100 |");
    println!("|---|---|---|---|---|---|---|");
    for m in [5usize, 20] {
        let mut cells = Vec::new();
        for k in [1usize, 10, 25, 50, 75, 100] {
            let approx = approximate(&sfa, StaccatoParams::new(m, k));
            cells.push(format!("{:.1}", direct_posting_count(&approx).log10()));
        }
        println!("| m={m} | {} |", cells.join(" | "));
    }
    println!();
    println!("| | m=1 | m=10 | m=20 | m=40 | m=60 | Max |");
    println!("|---|---|---|---|---|---|---|");
    for k in [10usize, 50] {
        let mut cells = Vec::new();
        for m in [1usize, 10, 20, 40, 60, M_MAX] {
            let approx = approximate(&sfa, StaccatoParams::new(m, k));
            let count = direct_posting_count(&approx);
            let marker = if count > u64::MAX as f64 {
                " (>u64)"
            } else {
                ""
            };
            cells.push(format!("{:.1}{marker}", count.log10()));
        }
        println!("| k={k} | {} |", cells.join(" | "));
    }
}

// ---------------------------------------------------------------- F6 / F15 --

/// Figure 6 (recall & runtime) and appendix Figure 15 (precision & F1):
/// sweeps over k for several m on the CA keyword + regex queries.
fn e_f6(ctx: &Ctx, precision_mode: bool) {
    let (title, what) = if precision_mode {
        (
            "Figure 15 — precision and F1 vs k, per m",
            "Paper shape: precision stays near MAP for small (m,k) and falls toward \
             FullSFA as both grow; F1 of Staccato can beat both extremes on regexes.",
        )
    } else {
        (
            "Figure 6 — recall and runtime vs k, per m",
            "Paper shape: k-MAP recall is nearly flat in k; increasing m lifts recall \
             toward FullSFA's 1.0 with runtime growing accordingly (keyword query starts \
             high ≈0.8; the regex starts much lower).",
        )
    };
    header(title, what);
    let mut corpus = MemCorpus::build(
        CorpusKind::CongressActs,
        ctx.lines(CorpusKind::CongressActs),
        ctx.seed,
        ctx.channel(),
    );
    let ks = [1usize, 10, 25, 50, 75, 100];
    let ms = [1usize, 10, 40, 100, M_MAX];
    for pattern in ["President", r"U.S.C. 2\d\d\d"] {
        let query = Query::regex(pattern).expect("pattern");
        let truth = corpus.ground_truth(&query);
        println!();
        println!("### `{pattern}` (truth = {})", truth.len());
        println!();
        let metric_cols = if precision_mode {
            "precision / F1"
        } else {
            "recall / runtime"
        };
        println!(
            "| engine \\ k ({metric_cols}) | {} |",
            ks.map(|k| k.to_string()).join(" | ")
        );
        println!("|---|{}|", ks.map(|_| "---").join("|"));
        // k-MAP row.
        let mut cells = Vec::new();
        for k in ks {
            let _ = corpus.kmap(k); // build outside the timer
            let mut a = Vec::new();
            let t = time_median(ctx.reps, || a = corpus.eval_kmap(k, &query, NUM_ANS));
            let m = evaluate_answers(&a, &truth);
            cells.push(if precision_mode {
                format!("{:.2}/{:.2}", m.precision, m.f1)
            } else {
                format!("{:.2}/{}", m.recall, fmt_duration(t))
            });
        }
        println!("| k-MAP | {} |", cells.join(" | "));
        // Staccato rows.
        for m in ms {
            let mut cells = Vec::new();
            for k in ks {
                let _ = corpus.staccato(m, k); // construct outside the timer
                let mut a = Vec::new();
                let t = time_median(ctx.reps, || a = corpus.eval_staccato(m, k, &query, NUM_ANS));
                let met = evaluate_answers(&a, &truth);
                cells.push(if precision_mode {
                    format!("{:.2}/{:.2}", met.precision, met.f1)
                } else {
                    format!("{:.2}/{}", met.recall, fmt_duration(t))
                });
            }
            let label = if m == M_MAX {
                "Max".to_string()
            } else {
                m.to_string()
            };
            println!("| STACCATO m={label} | {} |", cells.join(" | "));
        }
        // FullSFA row.
        let mut a = Vec::new();
        let t = time_median(ctx.reps, || a = corpus.eval_full(&query, NUM_ANS));
        let met = evaluate_answers(&a, &truth);
        let cell = if precision_mode {
            format!("{:.2}/{:.2}", met.precision, met.f1)
        } else {
            format!("{:.2}/{}", met.recall, fmt_duration(t))
        };
        println!("| FullSFA | {} |", vec![cell; ks.len()].join(" | "));
    }
}

// ---------------------------------------------------------------- F7 --

/// Figure 7 + appendix Figure 17: query length and wildcard complexity.
fn e_f7(ctx: &Ctx) {
    header(
        "Figure 7 / Figure 17 — query length and complexity",
        "Paper shape: runtimes grow slowly (polynomially) with query length for all \
         engines; recall shows no clear trend; Kleene-star wildcards hit FullSFA hardest.",
    );
    let mut corpus = MemCorpus::build(
        CorpusKind::CongressActs,
        ctx.lines(CorpusKind::CongressActs),
        ctx.seed,
        ctx.channel(),
    );
    let _ = corpus.staccato(40, 25);
    let _ = corpus.kmap(25);
    let runs: [(&str, Vec<String>); 3] = [
        (
            "keyword length",
            vec![
                "that",
                "federal",
                "Commission",
                "United States",
                "Attorney General",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
        ),
        (
            "simple wildcards (\\d)",
            (0..4)
                .map(|n| format!("U.S.C. 2{}", r"\d".repeat(n)))
                .collect(),
        ),
        (
            "complex wildcards ((\\x)*)",
            vec![
                "U.S.C. 2".to_string(),
                r"U(\x)*S.C. 2".to_string(),
                r"U(\x)*S(\x)*C. 2".to_string(),
                r"U(\x)*S(\x)*C(\x)* 2".to_string(),
            ],
        ),
    ];
    for (name, patterns) in runs {
        println!();
        println!("### {name}");
        println!();
        println!("| pattern | len | k-MAP recall/t | STACCATO recall/t | FullSFA recall/t |");
        println!("|---|---|---|---|---|");
        for pattern in patterns {
            let query = Query::regex(&pattern).expect("pattern");
            let truth = corpus.ground_truth(&query);
            let mut a = Vec::new();
            let tk = time_median(ctx.reps, || a = corpus.eval_kmap(25, &query, NUM_ANS));
            let mk = evaluate_answers(&a, &truth);
            let ts = time_median(ctx.reps, || {
                a = corpus.eval_staccato(40, 25, &query, NUM_ANS)
            });
            let ms = evaluate_answers(&a, &truth);
            let tf = time_median(ctx.reps, || a = corpus.eval_full(&query, NUM_ANS));
            let mf = evaluate_answers(&a, &truth);
            println!(
                "| `{pattern}` | {} | {:.2}/{} | {:.2}/{} | {:.2}/{} |",
                pattern.len(),
                mk.recall,
                fmt_duration(tk),
                ms.recall,
                fmt_duration(ts),
                mf.recall,
                fmt_duration(tf)
            );
        }
    }
}

// ---------------------------------------------------------------- F8 --

/// Figure 8 + appendix Figure 18: Staccato construction time.
fn e_f8(ctx: &Ctx) {
    header(
        "Figure 8 / Figure 18 — construction time",
        "Paper shape: (A) grows with SFA size n at fixed (m,k); (B) a spike once m \
         drops below |E| (merging starts), then roughly linear as m decreases; \
         (C) roughly linear in k.",
    );
    let channel = Channel::new(ctx.channel());
    let mk_line = |n: usize| -> String {
        "public law of the united states congress "
            .chars()
            .cycle()
            .take(n)
            .collect()
    };
    println!("| n (chars) | m=1 k=100 | m=40 k=100 |");
    println!("|---|---|---|");
    let sizes: &[usize] = if ctx.full {
        &[50, 100, 200, 300, 400, 500]
    } else {
        &[50, 100, 200, 300]
    };
    for &n in sizes {
        let sfa = channel.line_to_sfa(&mk_line(n), n as u64);
        let t1 = time_median(1, || {
            let _ = approximate(&sfa, StaccatoParams::new(1, 100));
        });
        let t40 = time_median(1, || {
            let _ = approximate(&sfa, StaccatoParams::new(40, 100));
        });
        println!("| {n} | {} | {} |", fmt_duration(t1), fmt_duration(t40));
    }
    println!();
    let n = if ctx.full { 300 } else { 150 };
    let sfa = channel.line_to_sfa(&mk_line(n), 7);
    let edges = sfa.edge_count();
    println!("(B) fixed n={n} chars, |E|={edges}, k=100; sweep m:");
    println!();
    println!("| m | construction time |");
    println!("|---|---|");
    let mut ms: Vec<usize> = vec![
        edges + 10,
        edges,
        edges * 3 / 4,
        edges / 2,
        edges / 4,
        10,
        1,
    ];
    ms.dedup();
    for m in ms {
        let t = time_median(1, || {
            let _ = approximate(&sfa, StaccatoParams::new(m.max(1), 100));
        });
        println!("| {m} | {} |", fmt_duration(t));
    }
    println!();
    println!("(C) fixed n={n}, m=40; sweep k:");
    println!();
    println!("| k | construction time |");
    println!("|---|---|");
    for k in [1usize, 10, 25, 50, 75, 100] {
        let t = time_median(1, || {
            let _ = approximate(&sfa, StaccatoParams::new(40, k));
        });
        println!("| {k} | {} |", fmt_duration(t));
    }
}

// ---------------------------------------------------------------- F9 --

/// Figure 9: inverted-index runtimes and selectivity.
fn e_f9(ctx: &Ctx) {
    header(
        "Figure 9 — index-assisted queries: runtime and selectivity",
        "Query `Public Law (8|9)\\d`, anchor term 'public'. Paper shape: the index wins \
         by ~an order of magnitude at small (m,k); as k and m grow the term's selectivity \
         rises and the advantage shrinks.",
    );
    // Part 1: through the real storage engine at the default parameters.
    let dataset = generate(
        CorpusKind::CongressActs,
        ctx.lines(CorpusKind::CongressActs),
        ctx.seed,
    );
    let db = Database::in_memory(8192).expect("db");
    let opts = LoadOptions {
        channel: ctx.channel(),
        kmap_k: 25,
        staccato: StaccatoParams::new(40, 25),
        ..Default::default()
    };
    let session = Staccato::load(db, &dataset, &opts).expect("load");
    let mut dict = corpus_dictionary(&dataset, 2000);
    // The §4 dictionary is user-supplied; make sure it covers the query's
    // anchor term even at tiny smoke-test scales where the sampled corpus
    // may not mention it.
    if !dict.iter().any(|t| t == "public") {
        dict.push("public".to_string());
    }
    let trie = staccato_automata::Trie::build(&dict);
    let t0 = Instant::now();
    let posting_count = session.register_index(&trie, "inv").expect("index build");
    let build_time = t0.elapsed();
    // The single source of truth for the pattern every f9 measurement uses.
    let pattern = r"Public Law (8|9)\d";
    let query = Query::regex(pattern).expect("pattern");
    let statement = format!(
        "SELECT DataKey, Prob FROM StaccatoData WHERE Data REGEXP {} LIMIT {NUM_ANS}",
        quote_str(pattern)
    );
    // The SQL EXPLAIN must show the planner auto-routing through the probe.
    let explain = session
        .sql(&format!("EXPLAIN {statement}"))
        .expect("explain")
        .explain
        .expect("explain text");
    assert!(explain.contains("IndexProbe"), "{explain}");
    // Both timed cells run the *same* lowered statement so the cells
    // measure equal work (parse/lower once, outside the timers); the
    // probe side additionally pins nothing — it is the auto plan.
    let probe_request =
        lower_statement(&parse_statement(&statement).expect("parse")).expect("lower");
    let scan_request = probe_request
        .clone()
        .plan_preference(PlanPreference::ForceFileScan);
    let mut a_scan = Vec::new();
    let t_scan = time_median(ctx.reps, || {
        a_scan = session.execute(&scan_request).expect("scan").answers;
    });
    let mut a_idx = Vec::new();
    let t_idx = time_median(ctx.reps, || {
        a_idx = session.execute(&probe_request).expect("probe").answers;
    });
    // The full SQL surface returns the identical relation.
    let via_sql = session.sql(&statement).expect("sql probe");
    assert!(via_sql.plan.is_index_probe());
    assert_eq!(via_sql.answers.len(), a_idx.len());
    let same: BTreeSet<i64> = a_scan.iter().map(|a| a.data_key).collect();
    let same2: BTreeSet<i64> = a_idx.iter().map(|a| a.data_key).collect();
    println!(
        "RDBMS path (m=40, k=25): dictionary {} terms ({} trie states), {posting_count} postings, \
         built in {}. Query issued as `{statement}`.",
        trie.term_count(),
        trie.state_count(),
        fmt_duration(build_time)
    );
    println!();
    println!("| plan | runtime | answers | answer sets equal |");
    println!("|---|---|---|---|");
    println!(
        "| filescan | {} | {} | |",
        fmt_duration(t_scan),
        a_scan.len()
    );
    println!(
        "| index probe + projection | {} | {} | {} |",
        fmt_duration(t_idx),
        a_idx.len(),
        same == same2
    );
    let expected = session
        .sql(&format!(
            "SELECT SUM(Prob) FROM StaccatoData WHERE Data REGEXP {}",
            quote_str(pattern)
        ))
        .expect("aggregate")
        .aggregate
        .expect("aggregate value");
    println!();
    println!(
        "E[COUNT(*)] over the probe's answer relation (SELECT SUM(Prob) ...): {:.3}",
        expected.value
    );

    // Part 2: selectivity sweep over (m, k) on in-memory representations.
    let mut corpus = MemCorpus::build(
        CorpusKind::CongressActs,
        ctx.lines(CorpusKind::CongressActs),
        ctx.seed,
        ctx.channel(),
    );
    let lines = corpus.line_count();
    println!();
    println!("| m | k | selectivity of 'public' | probe runtime | scan runtime | probe/scan |");
    println!("|---|---|---|---|---|---|");
    let combos: &[(usize, usize)] = if ctx.full {
        &[(1, 1), (1, 25), (10, 25), (40, 1), (40, 25), (100, 25)]
    } else {
        &[(1, 25), (10, 25), (40, 25)]
    };
    for &(m, k) in combos {
        let rep = corpus.staccato(m, k);
        // Build the per-term postings for this setting.
        let mut candidates: Vec<(usize, Vec<Posting>)> = Vec::new();
        for (i, blob) in rep.iter().enumerate() {
            let g = codec::decode(blob).expect("blob");
            let posts: Vec<Posting> = line_postings(&trie, &g)
                .into_iter()
                .filter(|(t, _)| trie.term(*t) == "public")
                .map(|(_, p)| p)
                .collect();
            if !posts.is_empty() {
                candidates.push((i, posts));
            }
        }
        let selectivity = candidates.len() as f64 / lines as f64;
        let depth = query.max_span().unwrap_or(usize::MAX);
        let t_probe = time_median(ctx.reps, || {
            let mut answers = Vec::new();
            for (i, posts) in &candidates {
                let g = codec::decode(&rep[*i]).expect("blob");
                let mut best = 0.0f64;
                for p in posts {
                    if let Some(e) = g.edge(p.edge) {
                        best = best.max(project_eval(&g, &query, e.from, depth + 1));
                    }
                }
                if best > 0.0 {
                    answers.push(Answer {
                        data_key: *i as i64,
                        probability: best,
                    });
                }
            }
            let _ = staccato_query::exec::rank_answers(answers, NUM_ANS);
        });
        let t_scan = time_median(ctx.reps, || {
            let _ = corpus.eval_staccato(m, k, &query, NUM_ANS);
        });
        println!(
            "| {m} | {k} | {:.1}% | {} | {} | {:.2} |",
            selectivity * 100.0,
            fmt_duration(t_probe),
            fmt_duration(t_scan),
            t_probe.as_secs_f64() / t_scan.as_secs_f64()
        );
    }
}

// ---------------------------------------------------------------- F10 --

/// Figure 10: scalability with dataset size.
fn e_f10(ctx: &Ctx) {
    header(
        "Figure 10 — filescan scalability",
        "Paper shape: every approach scales linearly in dataset size; MAP ≈ 3 orders of \
         magnitude below FullSFA, Staccato 1–2 below depending on parameters.",
    );
    let base = if ctx.full { 850 } else { 250 };
    let query = Query::regex(r"Public Law (8|9)\d").expect("pattern");
    println!("| lines | MAP | STACCATO m=10 k=50 | STACCATO m=40 k=50 | FullSFA |");
    println!("|---|---|---|---|---|");
    for mult in [1usize, 2, 4, 8] {
        let mut corpus = MemCorpus::build(CorpusKind::Books, base * mult, ctx.seed, ctx.channel());
        let _ = corpus.kmap(1);
        let t_map = time_median(ctx.reps, || {
            let _ = corpus.eval_map(&query, NUM_ANS);
        });
        let _ = corpus.staccato(10, 50);
        let t_s10 = time_median(ctx.reps, || {
            let _ = corpus.eval_staccato(10, 50, &query, NUM_ANS);
        });
        let _ = corpus.staccato(40, 50);
        let t_s40 = time_median(ctx.reps, || {
            let _ = corpus.eval_staccato(40, 50, &query, NUM_ANS);
        });
        let t_full = time_median(ctx.reps, || {
            let _ = corpus.eval_full(&query, NUM_ANS);
        });
        println!(
            "| {} | {} | {} | {} | {} |",
            base * mult,
            fmt_duration(t_map),
            fmt_duration(t_s10),
            fmt_duration(t_s40),
            fmt_duration(t_full)
        );
    }
}

// ---------------------------------------------------------------- F11 --

/// Figure 11 + §5.5: automated parameter tuning.
fn e_f11(ctx: &Ctx) {
    header(
        "Figure 11 / §5.5 — automated parameter tuning",
        "Size budget 10% of FullSFA, recall target 0.9, grid step 5. The tuner binary-\
         searches the smallest feasible m; compare with the exhaustive grid's optimum \
         (paper: tuner picked m=45,k=45; exhaustive found m=35,k=80, both recall 0.91).",
    );
    let lines = if ctx.full { 400 } else { 120 };
    let mut corpus = MemCorpus::build(CorpusKind::CongressActs, lines, ctx.seed, ctx.channel());
    let queries: Vec<Query> = [
        "President",
        "Commission",
        "employment",
        r"Public Law (8|9)\d",
        r"U.S.C. 2\d\d\d",
    ]
    .iter()
    .map(|p| Query::regex(p).expect("pattern"))
    .collect();
    let truths: Vec<BTreeSet<i64>> = queries.iter().map(|q| corpus.ground_truth(q)).collect();
    let budget = corpus.full_bytes() as f64 * 0.10;
    let model =
        SizeModel::from_line_lengths(&corpus.clean.iter().map(|l| l.len()).collect::<Vec<_>>());
    let constraints = TuningConstraints {
        size_budget_bytes: budget,
        recall_target: 0.9,
        step: 5,
        max_m: 60,
    };
    let avg_recall = |corpus: &mut MemCorpus, m: usize, k: usize| -> f64 {
        let mut total = 0.0;
        for (q, truth) in queries.iter().zip(&truths) {
            let answers = corpus.eval_staccato(m, k, q, NUM_ANS);
            total += evaluate_answers(&answers, truth).recall;
        }
        total / queries.len() as f64
    };
    let outcome = tune(&model, &constraints, |m, k| avg_recall(&mut corpus, m, k));
    match outcome {
        Some(o) => println!(
            "Tuner: m={}, k={}, measured avg recall {:.2} ({} recall evaluations; predicted \
             size {:.1}% of FullSFA, actual {:.1}%).",
            o.m,
            o.k,
            o.recall,
            o.evaluations,
            model.predicted_size(o.m, o.k) / corpus.full_bytes() as f64 * 100.0,
            corpus.staccato_bytes(o.m, o.k) as f64 / corpus.full_bytes() as f64 * 100.0,
        ),
        None => println!("Tuner: constraints infeasible at this scale."),
    }
    // Surface plots (size% of FullSFA / avg recall) on a coarse grid.
    println!();
    println!("Surface (size% of FullSFA / avg recall):");
    println!();
    let grid = [5usize, 15, 25, 35, 45];
    println!("| m \\ k | {} |", grid.map(|k| k.to_string()).join(" | "));
    println!("|---|{}|", grid.map(|_| "---").join("|"));
    let mut best: Option<(usize, usize, f64)> = None;
    for m in grid {
        let mut cells = Vec::new();
        for k in grid {
            let size_frac = corpus.staccato_bytes(m, k) as f64 / corpus.full_bytes() as f64 * 100.0;
            let recall = avg_recall(&mut corpus, m, k);
            if size_frac <= 10.0 && recall >= 0.9 {
                let better = match best {
                    None => true,
                    Some((bm, _, _)) => m < bm,
                };
                if better {
                    best = Some((m, k, recall));
                }
            }
            cells.push(format!("{size_frac:.1}%/{recall:.2}"));
        }
        println!("| {m} | {} |", cells.join(" | "));
    }
    match best {
        Some((m, k, r)) => {
            println!("\nExhaustive grid optimum within constraints: m={m}, k={k}, recall {r:.2}.")
        }
        None => println!("\nExhaustive grid found no feasible point within constraints."),
    }
}

// ---------------------------------------------------------------- F16 --

/// Appendix Figure 16: sensitivity to NumAns.
fn e_f16(ctx: &Ctx) {
    header(
        "Figure 16 — sensitivity to NumAns",
        "Paper shape: precision stays 1 while NumAns is below the truth size, then decays; \
         recall climbs until it saturates (k-MAP saturates early — no more answers; \
         FullSFA keeps supplying weak answers).",
    );
    let mut corpus = MemCorpus::build(
        CorpusKind::CongressActs,
        ctx.lines(CorpusKind::CongressActs),
        ctx.seed,
        ctx.channel(),
    );
    let _ = corpus.staccato(40, 75);
    let _ = corpus.kmap(75);
    for pattern in ["President", r"U.S.C. 2\d\d\d"] {
        let query = Query::regex(pattern).expect("pattern");
        let truth = corpus.ground_truth(&query);
        println!();
        println!("### `{pattern}` (truth = {})", truth.len());
        println!();
        println!("| NumAns | k-MAP P/R | STACCATO m=40 k=75 P/R | FullSFA P/R |");
        println!("|---|---|---|---|");
        for num_ans in [1usize, 2, 5, 10, 25, 50, 100] {
            let mk = evaluate_answers(&corpus.eval_kmap(75, &query, num_ans), &truth);
            let ms = evaluate_answers(&corpus.eval_staccato(40, 75, &query, num_ans), &truth);
            let mf = evaluate_answers(&corpus.eval_full(&query, num_ans), &truth);
            println!("| {num_ans} | {} | {} | {} |", pr(&mk), pr(&ms), pr(&mf));
        }
    }
}

// ---------------------------------------------------------------- F19 --

/// Appendix Figures 19 & 20: index construction time, size, selectivity.
fn e_f19(ctx: &Ctx) {
    header(
        "Figures 19 & 20 — index construction time, size, and term selectivity",
        "Paper shape: construction is roughly linear in k for small m, blows up around \
         m=40, k≥50 (many single-character chunks → many more postings); the term \
         'public' approaches 100% selectivity at high (m,k), making the index useless.",
    );
    let lines = if ctx.full { 400 } else { 150 };
    let mut corpus = MemCorpus::build(CorpusKind::CongressActs, lines, ctx.seed, ctx.channel());
    let dict = corpus_dictionary(&corpus.dataset, 2000);
    let trie = staccato_automata::Trie::build(&dict);
    let ms: &[usize] = &[1, 10, 40];
    let ks: &[usize] = &[1, 10, 25, 50];
    println!("| m | k | build time | postings | est. index bytes | 'public' selectivity |");
    println!("|---|---|---|---|---|---|");
    for &m in ms {
        for &k in ks {
            let rep = corpus.staccato(m, k);
            let t0 = Instant::now();
            let mut postings = 0u64;
            let mut bytes = 0u64;
            let mut have_public = 0usize;
            for blob in rep.iter() {
                let g = codec::decode(blob).expect("blob");
                let posts = line_postings(&trie, &g);
                postings += posts.len() as u64;
                let mut public_here = false;
                for (t, _) in &posts {
                    bytes += trie.term(*t).len() as u64 + 13 + 8;
                    if trie.term(*t) == "public" {
                        public_here = true;
                    }
                }
                have_public += public_here as usize;
            }
            let t = t0.elapsed();
            println!(
                "| {m} | {k} | {} | {postings} | {bytes} | {:.1}% |",
                fmt_duration(t),
                have_public as f64 / lines as f64 * 100.0
            );
        }
    }
}

// Silence the unused warning for the QuerySpec re-export used only by t4.
#[allow(dead_code)]
fn _spec_holder(_: QuerySpec) {}

// HashMap is used in earlier revisions of f9; keep the import exercised.
#[allow(dead_code)]
type _Unused = HashMap<u8, u8>;
