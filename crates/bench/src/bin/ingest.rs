//! Closed-loop ingest harness: one writer driving durable batches
//! through the WAL-backed write path, then a measured crash recovery.
//!
//! ```text
//! ingest [--lines L] [--batches N] [--docs-per-batch D] [--seed S]
//!        [--sync always|commit|never] [--out PATH]
//! ```
//!
//! The loop is closed (the next batch is submitted only when the
//! previous one has committed), so the reported docs/sec is the
//! sustainable single-writer rate, fsyncs included. After the last
//! batch the session is dropped *without* a checkpoint — the on-disk
//! shape a crash leaves — and `Staccato::recover` replays every batch
//! from the WAL, timed as `recovery.wall_secs`. The run fails loudly
//! if the recovered store does not hold exactly the ingested lines.
//!
//! Everything lands in `BENCH_ingest.json`: docs/sec, p50/p95 batch
//! commit latency, WAL bytes and fsyncs, and the recovery replay wall,
//! so later PRs can see both the write path and the recovery path move.

use staccato_bench::timing::fmt_duration;
use staccato_core::StaccatoParams;
use staccato_ocr::{generate, ChannelConfig, CorpusKind};
use staccato_query::store::LoadOptions;
use staccato_query::{DocumentInput, IngestBatch, RecoverOptions, Staccato};
use staccato_storage::{Database, SyncPolicy};
use std::time::{Duration, Instant};

struct Config {
    lines: usize,
    batches: usize,
    docs_per_batch: usize,
    seed: u64,
    sync: SyncPolicy,
    out: String,
}

fn main() {
    let mut cfg = Config {
        lines: 100,
        batches: 200,
        docs_per_batch: 4,
        seed: 42,
        sync: SyncPolicy::Commit,
        out: "BENCH_ingest.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match a.as_str() {
            "--lines" => cfg.lines = next("--lines").parse().expect("lines"),
            "--batches" => cfg.batches = next("--batches").parse().expect("batches"),
            "--docs-per-batch" => {
                cfg.docs_per_batch = next("--docs-per-batch").parse().expect("docs-per-batch")
            }
            "--seed" => cfg.seed = next("--seed").parse().expect("seed"),
            "--sync" => {
                cfg.sync = match next("--sync").as_str() {
                    "always" => SyncPolicy::Always,
                    "commit" => SyncPolicy::Commit,
                    "never" => SyncPolicy::Never,
                    other => panic!("unknown sync policy {other:?}"),
                }
            }
            "--out" => cfg.out = next("--out").clone(),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(cfg.batches >= 1 && cfg.docs_per_batch >= 1);

    let dir = std::env::temp_dir().join(format!("staccato_ingest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let db_path = dir.join("store.db");
    let wal_dir = dir.join("wal");

    eprintln!(
        "loading {} lines of CongressActs (seed {}) ...",
        cfg.lines, cfg.seed
    );
    let opts = LoadOptions {
        channel: ChannelConfig::compact(cfg.seed),
        kmap_k: 6,
        staccato: StaccatoParams::new(8, 6),
        parallelism: 2,
    };
    let pool_frames = pool_frames_for(cfg.lines, cfg.batches * cfg.docs_per_batch);
    let total_docs = cfg.batches * cfg.docs_per_batch;
    let wal_stats;
    let ingest_wall;
    let mut latencies: Vec<Duration> = Vec::with_capacity(cfg.batches);
    {
        let dataset = generate(CorpusKind::CongressActs, cfg.lines, cfg.seed);
        let db = Database::create(&db_path, pool_frames).expect("create");
        let session = Staccato::load(db, &dataset, &opts).expect("load");
        session.checkpoint().expect("checkpoint after load");
        session.attach_wal(&wal_dir, cfg.sync).expect("attach WAL");

        let started = Instant::now();
        for b in 0..cfg.batches {
            let mut batch = IngestBatch::new();
            for d in 0..cfg.docs_per_batch {
                batch = batch.doc(
                    DocumentInput::new(
                        format!("scan-{b}-{d}.png"),
                        format!("the committee reported amendment {b} section {d} to the act"),
                    )
                    .provider("bench"),
                );
            }
            let q = Instant::now();
            session.ingest(batch).expect("ingest");
            latencies.push(q.elapsed());
        }
        ingest_wall = started.elapsed();
        wal_stats = session.ingest_stats();
        assert_eq!(session.line_count(), cfg.lines + total_docs);
        // Crash: drop without a checkpoint — every batch must come back
        // from the WAL alone.
    }

    let recovery_started = Instant::now();
    let recovered = Staccato::recover_with(
        &db_path,
        &wal_dir,
        &RecoverOptions {
            pool_frames,
            load: opts,
            sync: cfg.sync,
        },
    )
    .expect("recover");
    let recovery_wall = recovery_started.elapsed();
    let replayed = recovered.ingest_stats().replays;
    assert_eq!(
        recovered.line_count(),
        cfg.lines + total_docs,
        "recovery must restore every committed batch"
    );
    assert_eq!(replayed as usize, cfg.batches);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    latencies.sort();
    let pct = |p: f64| latencies[(((latencies.len() - 1) as f64) * p) as usize];
    let (p50, p95) = (pct(0.50), pct(0.95));
    let docs_per_sec = total_docs as f64 / ingest_wall.as_secs_f64().max(1e-12);
    let replay_per_sec = total_docs as f64 / recovery_wall.as_secs_f64().max(1e-12);

    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"corpus\": \"CongressActs\",\n  \"lines\": {},\n  \"seed\": {},\n  \"batches\": {},\n  \"docs_per_batch\": {},\n  \"total_docs\": {},\n  \"sync\": \"{:?}\",\n  \"pool_frames\": {},\n  \"ingest\": {{\"wall_secs\": {:.6}, \"docs_per_sec\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"wal_records\": {}, \"wal_bytes\": {}, \"wal_fsyncs\": {}}},\n  \"recovery\": {{\"wall_secs\": {:.6}, \"replayed_batches\": {}, \"docs_per_sec\": {:.2}}}\n}}\n",
        cfg.lines,
        cfg.seed,
        cfg.batches,
        cfg.docs_per_batch,
        total_docs,
        cfg.sync,
        pool_frames,
        ingest_wall.as_secs_f64(),
        docs_per_sec,
        p50.as_secs_f64() * 1e3,
        p95.as_secs_f64() * 1e3,
        wal_stats.wal_records_appended,
        wal_stats.wal_bytes_logged,
        wal_stats.wal_fsyncs,
        recovery_wall.as_secs_f64(),
        replayed,
        replay_per_sec,
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH json");

    println!(
        "ingest  : {:>9.1} docs/s  p50 {:>9}  p95 {:>9}  ({} batches, {} WAL bytes, {} fsyncs)",
        docs_per_sec,
        fmt_duration(p50),
        fmt_duration(p95),
        cfg.batches,
        wal_stats.wal_bytes_logged,
        wal_stats.wal_fsyncs,
    );
    println!(
        "recover : {:>9.1} docs/s  replayed {} batches in {}",
        replay_per_sec,
        replayed,
        fmt_duration(recovery_wall),
    );
    println!("-> {}", cfg.out);
}

/// A pool big enough to hold the corpus plus everything the run will
/// ingest: the write path is the measured subject, not page eviction
/// (and batch-level replay needs checkpoint-consistent data files).
fn pool_frames_for(lines: usize, ingested: usize) -> usize {
    ((lines + ingested) * 8).clamp(1024, 65_536)
}
