//! Closed-loop ingest harness: N concurrent writers driving durable
//! batches through the WAL-backed write path, then a measured crash
//! recovery.
//!
//! ```text
//! ingest [--lines L] [--batches N] [--docs-per-batch D] [--seed S]
//!        [--sync always|commit|never] [--writers W] [--sweep 1,4,8]
//!        [--out PATH]
//! ```
//!
//! Each sweep point loads a fresh store, attaches a fresh WAL, and
//! splits `--batches` across `W` writer threads, each running a closed
//! loop (a writer submits its next batch only when the previous one's
//! receipt — durable by contract — has returned). With one writer the
//! reported docs/sec is the sustainable per-batch-fsync rate; with
//! several, the group-commit flusher shares fsyncs across writers and
//! `batches_per_fsync` in the JSON shows the amortization directly.
//!
//! After each point the session is dropped *without* a checkpoint — the
//! on-disk shape a crash leaves — and `Staccato::recover` replays every
//! batch from the WAL. The run fails loudly if any recovered store does
//! not hold exactly the ingested lines.
//!
//! Everything lands in `BENCH_ingest.json`: a `group_commit` array with
//! one point per writer count (docs/sec, p50/p95 batch latency, flush
//! waits, fsyncs, group commits, batches per fsync), the single-writer
//! point under `ingest` (compatible with earlier revisions of this
//! file), the headline speedup, and the recovery replay wall.

use staccato_bench::timing::fmt_duration;
use staccato_core::StaccatoParams;
use staccato_ocr::{generate, ChannelConfig, CorpusKind};
use staccato_query::store::LoadOptions;
use staccato_query::{DocumentInput, IngestBatch, IngestStats, RecoverOptions, Staccato};
use staccato_storage::{Database, SyncPolicy};
use std::path::Path;
use std::time::{Duration, Instant};

struct Config {
    lines: usize,
    batches: usize,
    docs_per_batch: usize,
    seed: u64,
    sync: SyncPolicy,
    writers: usize,
    sweep: Vec<usize>,
    out: String,
}

struct Point {
    writers: usize,
    wall: Duration,
    docs_per_sec: f64,
    p50: Duration,
    p95: Duration,
    stats: IngestStats,
    recovery_wall: Duration,
    replayed: u64,
}

fn main() {
    let mut cfg = Config {
        lines: 100,
        batches: 200,
        docs_per_batch: 4,
        seed: 42,
        sync: SyncPolicy::Commit,
        writers: 8,
        sweep: vec![1, 4, 8],
        out: "BENCH_ingest.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match a.as_str() {
            "--lines" => cfg.lines = next("--lines").parse().expect("lines"),
            "--batches" => cfg.batches = next("--batches").parse().expect("batches"),
            "--docs-per-batch" => {
                cfg.docs_per_batch = next("--docs-per-batch").parse().expect("docs-per-batch")
            }
            "--seed" => cfg.seed = next("--seed").parse().expect("seed"),
            "--sync" => {
                cfg.sync = match next("--sync").as_str() {
                    "always" => SyncPolicy::Always,
                    "commit" => SyncPolicy::Commit,
                    "never" => SyncPolicy::Never,
                    other => panic!("unknown sync policy {other:?}"),
                }
            }
            "--writers" => cfg.writers = next("--writers").parse().expect("writers"),
            "--sweep" => {
                cfg.sweep = next("--sweep")
                    .split(',')
                    .map(|t| t.trim().parse().expect("sweep writer count"))
                    .collect()
            }
            "--out" => cfg.out = next("--out").clone(),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(cfg.batches >= 1 && cfg.docs_per_batch >= 1 && cfg.writers >= 1);
    // The sweep always contains the single-writer baseline and the
    // headline writer count, ascending, deduplicated.
    cfg.sweep.push(1);
    cfg.sweep.push(cfg.writers);
    cfg.sweep.sort_unstable();
    cfg.sweep.dedup();

    let dir = std::env::temp_dir().join(format!("staccato_ingest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    eprintln!(
        "loading {} lines of CongressActs (seed {}) per point, writers sweep {:?} ...",
        cfg.lines, cfg.seed, cfg.sweep
    );
    let opts = LoadOptions {
        channel: ChannelConfig::compact(cfg.seed),
        kmap_k: 6,
        staccato: StaccatoParams::new(8, 6),
        parallelism: 2,
    };
    let pool_frames = pool_frames_for(cfg.lines, cfg.batches * cfg.docs_per_batch);

    let points: Vec<Point> = cfg
        .sweep
        .iter()
        .map(|&writers| {
            let point = run_point(&cfg, &opts, pool_frames, &dir, writers);
            println!(
                "writers {:>2}: {:>9.1} docs/s  p50 {:>9}  p95 {:>9}  \
                 fsyncs {:>5}  batches/fsync {:>6.2}  flush-wait p95 {}",
                writers,
                point.docs_per_sec,
                fmt_duration(point.p50),
                fmt_duration(point.p95),
                point.stats.wal_fsyncs,
                point.stats.wal_batches_per_fsync,
                fmt_duration(point.stats.wal_flush_wait_p95),
            );
            point
        })
        .collect();
    let _ = std::fs::remove_dir_all(&dir);

    let single = points
        .iter()
        .find(|p| p.writers == 1)
        .expect("sweep always holds the single-writer baseline");
    let headline = points
        .iter()
        .find(|p| p.writers == cfg.writers)
        .expect("sweep always holds the headline writer count");
    let speedup = headline.docs_per_sec / single.docs_per_sec.max(1e-12);
    let total_docs = cfg.batches * cfg.docs_per_batch;

    let group_points: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"writers\": {}, \"wall_secs\": {:.6}, \"docs_per_sec\": {:.2}, \
                 \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"flush_wait_p95_ms\": {:.4}, \
                 \"fsyncs\": {}, \"group_commits\": {}, \"batches_per_fsync\": {:.4}, \
                 \"wal_records\": {}, \"wal_bytes\": {}, \"segments_deleted\": {}}}",
                p.writers,
                p.wall.as_secs_f64(),
                p.docs_per_sec,
                p.p50.as_secs_f64() * 1e3,
                p.p95.as_secs_f64() * 1e3,
                p.stats.wal_flush_wait_p95.as_secs_f64() * 1e3,
                p.stats.wal_fsyncs,
                p.stats.wal_group_commits,
                p.stats.wal_batches_per_fsync,
                p.stats.wal_records_appended,
                p.stats.wal_bytes_logged,
                p.stats.wal_segments_deleted,
            )
        })
        .collect();

    let replay_per_sec = total_docs as f64 / headline.recovery_wall.as_secs_f64().max(1e-12);
    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"corpus\": \"CongressActs\",\n  \"lines\": {},\n  \"seed\": {},\n  \"batches\": {},\n  \"docs_per_batch\": {},\n  \"total_docs\": {},\n  \"sync\": \"{:?}\",\n  \"pool_frames\": {},\n  \"writers\": {},\n  \"ingest\": {{\"wall_secs\": {:.6}, \"docs_per_sec\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"wal_records\": {}, \"wal_bytes\": {}, \"wal_fsyncs\": {}}},\n  \"group_commit\": [\n{}\n  ],\n  \"speedup_vs_single_writer\": {:.2},\n  \"recovery\": {{\"wall_secs\": {:.6}, \"replayed_batches\": {}, \"docs_per_sec\": {:.2}}}\n}}\n",
        cfg.lines,
        cfg.seed,
        cfg.batches,
        cfg.docs_per_batch,
        total_docs,
        cfg.sync,
        pool_frames,
        cfg.writers,
        single.wall.as_secs_f64(),
        single.docs_per_sec,
        single.p50.as_secs_f64() * 1e3,
        single.p95.as_secs_f64() * 1e3,
        single.stats.wal_records_appended,
        single.stats.wal_bytes_logged,
        single.stats.wal_fsyncs,
        group_points.join(",\n"),
        speedup,
        headline.recovery_wall.as_secs_f64(),
        headline.replayed,
        replay_per_sec,
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH json");

    println!(
        "speedup : {:.2}x at {} writers vs single-writer-per-fsync",
        speedup, cfg.writers
    );
    println!(
        "recover : {:>9.1} docs/s  replayed {} batches in {}",
        replay_per_sec,
        headline.replayed,
        fmt_duration(headline.recovery_wall),
    );
    println!("-> {}", cfg.out);
}

/// One sweep point: fresh store + WAL, `writers` concurrent closed
/// loops sharing `cfg.batches` batches, then a crash (drop without
/// checkpoint) and a verified, timed recovery.
fn run_point(
    cfg: &Config,
    opts: &LoadOptions,
    pool_frames: usize,
    dir: &Path,
    writers: usize,
) -> Point {
    let point_dir = dir.join(format!("w{writers}"));
    std::fs::create_dir_all(&point_dir).expect("point dir");
    let db_path = point_dir.join("store.db");
    let wal_dir = point_dir.join("wal");
    let total_docs = cfg.batches * cfg.docs_per_batch;

    let wall;
    let stats;
    let mut latencies: Vec<Duration> = Vec::with_capacity(cfg.batches);
    {
        let dataset = generate(CorpusKind::CongressActs, cfg.lines, cfg.seed);
        let db = Database::create(&db_path, pool_frames).expect("create");
        let session = Staccato::load(db, &dataset, opts).expect("load");
        session.checkpoint().expect("checkpoint after load");
        session.attach_wal(&wal_dir, cfg.sync).expect("attach WAL");

        let started = Instant::now();
        let mut per_writer: Vec<Vec<Duration>> = Vec::with_capacity(writers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..writers)
                .map(|w| {
                    let session = &session;
                    scope.spawn(move || {
                        // Strided split: writer w drives batches
                        // w, w+writers, w+2*writers, ... closed-loop.
                        let mut lat = Vec::new();
                        let mut b = w;
                        while b < cfg.batches {
                            let mut batch = IngestBatch::new();
                            for d in 0..cfg.docs_per_batch {
                                batch = batch.doc(
                                    DocumentInput::new(
                                        format!("scan-{writers}w-{b}-{d}.png"),
                                        format!(
                                            "the committee reported amendment {b} \
                                             section {d} to the act"
                                        ),
                                    )
                                    .provider("bench"),
                                );
                            }
                            let q = Instant::now();
                            session.ingest(batch).expect("ingest");
                            lat.push(q.elapsed());
                            b += writers;
                        }
                        lat
                    })
                })
                .collect();
            for h in handles {
                per_writer.push(h.join().expect("writer thread"));
            }
        });
        wall = started.elapsed();
        for lat in per_writer {
            latencies.extend(lat);
        }
        stats = session.ingest_stats();
        assert_eq!(session.line_count(), cfg.lines + total_docs);
        // Crash: drop without a checkpoint — every batch must come back
        // from the WAL alone.
    }

    let recovery_started = Instant::now();
    let recovered = Staccato::recover_with(
        &db_path,
        &wal_dir,
        &RecoverOptions {
            pool_frames,
            load: opts.clone(),
            sync: cfg.sync,
        },
    )
    .expect("recover");
    let recovery_wall = recovery_started.elapsed();
    let replayed = recovered.ingest_stats().replays;
    assert_eq!(
        recovered.line_count(),
        cfg.lines + total_docs,
        "recovery must restore every acknowledged batch"
    );
    assert_eq!(replayed as usize, cfg.batches);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&point_dir);

    latencies.sort();
    let pct = |p: f64| latencies[(((latencies.len() - 1) as f64) * p) as usize];
    Point {
        writers,
        wall,
        docs_per_sec: total_docs as f64 / wall.as_secs_f64().max(1e-12),
        p50: pct(0.50),
        p95: pct(0.95),
        stats,
        recovery_wall,
        replayed,
    }
}

/// A pool big enough to hold the corpus plus everything the run will
/// ingest: the write path is the measured subject, not page eviction
/// (and batch-level replay needs checkpoint-consistent data files).
fn pool_frames_for(lines: usize, ingested: usize) -> usize {
    ((lines + ingested) * 8).clamp(1024, 65_536)
}
