//! Closed-loop HTTP load generator for the service tier.
//!
//! Boots a server in-process on an ephemeral port over a freshly
//! loaded corpus, then drives it with `--connections` concurrent
//! keep-alive clients, each firing `--requests` requests back-to-back
//! (closed loop: the next request leaves when the previous answer
//! lands). Each connection carries its own `X-Client-Id`, so the
//! per-client token bucket sees them as distinct clients and the
//! measured phase runs throttle-free; a separate burst phase then
//! hammers a single identity past its burst allowance to prove the
//! limiter answers 429 with `Retry-After`.
//!
//! ```text
//! http_load [--connections N] [--requests M] [--lines L] [--seed S]
//!           [--workers W] [--out PATH]
//! ```
//!
//! Results land in `BENCH_http.json`. The process exits nonzero if
//! the measured phase sees any non-2xx response, if any phase sees a
//! 5xx, or if the burst phase fails to draw a 429 — so CI can use a
//! short run as a smoke gate.

use staccato_bench::timing::fmt_duration;
use staccato_core::StaccatoParams;
use staccato_ocr::{generate, ChannelConfig, CorpusKind};
use staccato_query::store::LoadOptions;
use staccato_query::Staccato;
use staccato_server::json::obj;
use staccato_server::{HttpClient, Json, RateLimit, Server, ServerConfig};
use staccato_storage::Database;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The request mix per connection: ranked scans over two
/// representations, a paged query, an aggregate, and (interleaved by
/// the driver) a prepared-statement execution.
const WORKLOAD: &[&str] = &[
    "SELECT DataKey, Prob FROM MAPData WHERE Data REGEXP 'President' LIMIT 50",
    "SELECT DataKey, Prob FROM StaccatoData WHERE Data LIKE '%Commission%' LIMIT 50",
    "SELECT DataKey, Prob FROM StaccatoData WHERE Data REGEXP 'the' LIMIT 10 OFFSET 10",
    "SELECT COUNT(*) FROM MAPData WHERE Data LIKE '%Act%'",
];

const PREPARED_SQL: &str = "SELECT DataKey FROM MAPData WHERE Data REGEXP ? LIMIT ?";

struct Config {
    connections: usize,
    requests: usize,
    lines: usize,
    seed: u64,
    workers: usize,
    out: String,
}

#[derive(Default)]
struct Tally {
    latencies: Vec<Duration>,
    ok_2xx: u64,
    rate_limited: u64,
    other_4xx: u64,
    server_5xx: u64,
}

impl Tally {
    fn absorb(&mut self, status: u16, latency: Duration) {
        self.latencies.push(latency);
        match status {
            200..=299 => self.ok_2xx += 1,
            429 => self.rate_limited += 1,
            400..=499 => self.other_4xx += 1,
            _ => self.server_5xx += 1,
        }
    }

    fn merge(&mut self, other: Tally) {
        self.latencies.extend(other.latencies);
        self.ok_2xx += other.ok_2xx;
        self.rate_limited += other.rate_limited;
        self.other_4xx += other.other_4xx;
        self.server_5xx += other.server_5xx;
    }
}

fn main() {
    let mut cfg = Config {
        connections: 32,
        requests: 25,
        lines: 120,
        seed: 42,
        workers: 8,
        out: "BENCH_http.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match a.as_str() {
            "--connections" => cfg.connections = next("--connections").parse().expect("conns"),
            "--requests" => cfg.requests = next("--requests").parse().expect("requests"),
            "--lines" => cfg.lines = next("--lines").parse().expect("lines"),
            "--seed" => cfg.seed = next("--seed").parse().expect("seed"),
            "--workers" => cfg.workers = next("--workers").parse().expect("workers"),
            "--out" => cfg.out = next("--out").clone(),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(cfg.connections >= 1 && cfg.requests >= 1);

    eprintln!(
        "loading {} lines of CongressActs (seed {}) ...",
        cfg.lines, cfg.seed
    );
    let dataset = generate(CorpusKind::CongressActs, cfg.lines, cfg.seed);
    let db = Database::in_memory(2048).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(cfg.seed),
        kmap_k: 8,
        staccato: StaccatoParams::new(10, 8),
        parallelism: 2,
    };
    let session = Arc::new(Staccato::load(db, &dataset, &opts).expect("load"));

    // Bucket sized so a measured-phase connection (its own identity,
    // `requests` sends plus one /prepare) never throttles, while the
    // burst phase (one identity, 2× the allowance) must.
    let burst_allowance = (cfg.requests + 1).min(200) as u32;
    let server_config = ServerConfig {
        workers: cfg.workers,
        poll_interval: Duration::from_millis(2),
        rate_limit: Some(RateLimit::new(burst_allowance, 50.0)),
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&session), server_config).expect("server");
    let addr = server.addr();
    eprintln!(
        "server on http://{addr} ({} workers, burst allowance {burst_allowance})",
        cfg.workers
    );

    // Warm the compiled-query cache so the measured loop sees
    // steady-state traffic.
    for sql in WORKLOAD {
        session.sql(sql).expect("warm-up");
    }

    // ---- measured closed loop --------------------------------------
    let started = Instant::now();
    let mut tally = Tally::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|c| {
                scope.spawn(move || {
                    let mut t = Tally::default();
                    let mut client =
                        HttpClient::connect_as(addr, &format!("load-{c}")).expect("connect");
                    // One prepared statement per connection, used for
                    // every 5th request.
                    let resp = client
                        .post("/prepare", &format!("{{\"sql\": {PREPARED_SQL:?}}}"))
                        .expect("prepare");
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    let id = resp
                        .json()
                        .expect("json")
                        .get("statement_id")
                        .and_then(Json::as_u64)
                        .expect("statement id");
                    for i in 0..cfg.requests {
                        let q = Instant::now();
                        let resp = if i % 5 == 4 {
                            client
                                .post(
                                    "/execute",
                                    &format!(
                                        "{{\"statement_id\": {id}, \
                                         \"params\": [\"Public\", 20]}}"
                                    ),
                                )
                                .expect("execute")
                        } else {
                            let sql = WORKLOAD[(c + i) % WORKLOAD.len()];
                            client
                                .post("/query", &format!("{{\"sql\": {sql:?}}}"))
                                .expect("query")
                        };
                        t.absorb(resp.status, q.elapsed());
                        if resp.status >= 500 {
                            eprintln!("5xx from worker: {}", resp.body);
                        }
                    }
                    t
                })
            })
            .collect();
        for h in handles {
            tally.merge(h.join().expect("load thread"));
        }
    });
    let wall = started.elapsed();
    tally.latencies.sort();
    let total = tally.latencies.len();
    let pct = |p: f64| tally.latencies[(((total - 1) as f64) * p) as usize];
    let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));
    let qps = total as f64 / wall.as_secs_f64().max(1e-12);

    // ---- burst phase: one identity past its allowance ---------------
    let mut burst = Tally::default();
    let mut retry_after_seen = false;
    {
        let mut greedy = HttpClient::connect_as(addr, "greedy").expect("connect");
        for _ in 0..(burst_allowance as usize * 2 + 10) {
            let q = Instant::now();
            let resp = greedy
                .post(
                    "/query",
                    "{\"sql\": \"SELECT DataKey FROM MAPData WHERE Data REGEXP 'a' LIMIT 1\"}",
                )
                .expect("burst query");
            if resp.status == 429 && resp.header("retry-after").is_some() {
                retry_after_seen = true;
            }
            burst.absorb(resp.status, q.elapsed());
        }
    }

    // ---- server-side stats snapshot ---------------------------------
    let stats_snapshot = {
        let mut client = HttpClient::connect(addr).expect("connect");
        let resp = client.get("/stats").expect("stats");
        assert_eq!(resp.status, 200);
        resp.json().expect("stats json")
    };
    server.shutdown();

    let json = obj([
        ("bench", Json::Str("http_load".into())),
        ("corpus", Json::Str("CongressActs".into())),
        ("lines", Json::Num(cfg.lines as f64)),
        ("seed", Json::Num(cfg.seed as f64)),
        ("connections", Json::Num(cfg.connections as f64)),
        ("requests_per_connection", Json::Num(cfg.requests as f64)),
        ("server_workers", Json::Num(cfg.workers as f64)),
        ("burst_allowance", Json::Num(burst_allowance as f64)),
        (
            "measured",
            obj([
                ("wall_secs", Json::Num(wall.as_secs_f64())),
                ("qps", Json::Num(qps)),
                ("p50_ms", Json::Num(p50.as_secs_f64() * 1e3)),
                ("p95_ms", Json::Num(p95.as_secs_f64() * 1e3)),
                ("p99_ms", Json::Num(p99.as_secs_f64() * 1e3)),
                ("responses_2xx", Json::Num(tally.ok_2xx as f64)),
                ("responses_429", Json::Num(tally.rate_limited as f64)),
                ("responses_other_4xx", Json::Num(tally.other_4xx as f64)),
                ("responses_5xx", Json::Num(tally.server_5xx as f64)),
            ]),
        ),
        (
            "burst",
            obj([
                ("requests", Json::Num(burst.latencies.len() as f64)),
                ("responses_2xx", Json::Num(burst.ok_2xx as f64)),
                ("responses_429", Json::Num(burst.rate_limited as f64)),
                ("responses_5xx", Json::Num(burst.server_5xx as f64)),
                ("retry_after_seen", Json::Bool(retry_after_seen)),
            ]),
        ),
        ("server_stats", stats_snapshot),
    ]);
    std::fs::write(&cfg.out, json.render() + "\n").expect("write BENCH json");

    println!(
        "{} conns x {} reqs: {:>8.1} qps  p50 {:>9}  p95 {:>9}  p99 {:>9}",
        cfg.connections,
        cfg.requests,
        qps,
        fmt_duration(p50),
        fmt_duration(p95),
        fmt_duration(p99),
    );
    println!(
        "statuses    : 2xx {}  429 {}  other-4xx {}  5xx {}",
        tally.ok_2xx, tally.rate_limited, tally.other_4xx, tally.server_5xx
    );
    println!(
        "burst phase : {} requests -> {} throttled (Retry-After seen: {retry_after_seen})",
        burst.latencies.len(),
        burst.rate_limited
    );
    println!("-> {}", cfg.out);

    // Gate: the measured phase must be clean, 5xx is never acceptable,
    // and the limiter must demonstrably fire under burst.
    let mut failures = Vec::new();
    if tally.server_5xx + burst.server_5xx > 0 {
        failures.push("5xx responses observed");
    }
    if tally.rate_limited + tally.other_4xx > 0 {
        failures.push("non-2xx responses in the measured phase");
    }
    if burst.rate_limited == 0 || !retry_after_seen {
        failures.push("burst phase did not draw a 429 with Retry-After");
    }
    if !failures.is_empty() {
        eprintln!("FAILED: {}", failures.join("; "));
        std::process::exit(1);
    }
}
