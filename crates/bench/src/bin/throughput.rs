//! Concurrent-throughput harness: N client threads firing M queries each
//! at one shared `Arc<Staccato>` session, the workload shape of
//! retrieval pipelines doing many small probabilistic lookups at once.
//!
//! ```text
//! throughput [--threads N] [--queries M] [--lines L] [--seed S]
//!            [--pool-frames F] [--write-pct P] [--out PATH]
//! ```
//!
//! The workload is a fixed mixed set — `LIKE` and `REGEXP` filescans
//! over every representation, an index-probe query, and a streaming
//! aggregate — issued through the SQL surface so the compiled-query
//! cache is on the measured path. The harness runs a single-thread
//! baseline first (same queries, same session state), then the
//! N-thread run, and emits both to `BENCH_throughput.json`: QPS,
//! p50/p95 latency, buffer-pool hit rate, and query-cache hit rate, so
//! later PRs have a trajectory to compare against.
//!
//! `--write-pct P` turns the workload into a mixed read/write stream:
//! a deterministic `P%` of each client's statements become single-row
//! `INSERT INTO StaccatoData` batches with thread-unique document
//! names, so writers contend on the ingest latch and every write
//! invalidates the compiled-query cache under the readers — the
//! worst-case interaction the latch design has to absorb.

use staccato_bench::timing::fmt_duration;
use staccato_core::StaccatoParams;
use staccato_ocr::{generate, ChannelConfig, CorpusKind};
use staccato_query::store::LoadOptions;
use staccato_query::Staccato;
use staccato_storage::Database;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The mixed query set, shaped like Table 6 traffic: keyword and regex
/// predicates, every representation, one anchored probe candidate, one
/// aggregate.
const WORKLOAD: &[&str] = &[
    "SELECT DataKey, Prob FROM MAPData WHERE Data REGEXP 'President' LIMIT 100",
    "SELECT DataKey, Prob FROM StaccatoData WHERE Data LIKE '%Commission%' LIMIT 100",
    "SELECT DataKey FROM StaccatoData WHERE Data REGEXP 'Public Law (8|9)\\d' LIMIT 100",
    "SELECT DataKey, Prob FROM kMAPData WHERE Data REGEXP 'United States' LIMIT 50",
    "SELECT COUNT(*) FROM MAPData WHERE Data LIKE '%Act%'",
    "SELECT DataKey FROM MAPData WHERE Data REGEXP 'employment' AND Prob >= 0.1 LIMIT 100",
];

struct Config {
    threads: usize,
    queries: usize,
    lines: usize,
    seed: u64,
    /// Buffer-pool frames; 0 sizes the pool *below* the corpus so
    /// scans actually miss and evict (see `main`).
    pool_frames: usize,
    /// Percent of each client's statements that are writes (0-100).
    write_pct: usize,
    out: String,
}

struct RunStats {
    wall: Duration,
    qps: f64,
    p50: Duration,
    p95: Duration,
    writes: usize,
}

fn main() {
    let mut cfg = Config {
        threads: 8,
        queries: 64,
        lines: 1000,
        seed: 42,
        pool_frames: 0,
        write_pct: 0,
        out: "BENCH_throughput.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match a.as_str() {
            "--threads" => cfg.threads = next("--threads").parse().expect("threads"),
            "--queries" => cfg.queries = next("--queries").parse().expect("queries"),
            "--lines" => cfg.lines = next("--lines").parse().expect("lines"),
            "--seed" => cfg.seed = next("--seed").parse().expect("seed"),
            "--pool-frames" => {
                cfg.pool_frames = next("--pool-frames").parse().expect("pool-frames")
            }
            "--write-pct" => cfg.write_pct = next("--write-pct").parse().expect("write-pct"),
            "--out" => cfg.out = next("--out").clone(),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(cfg.threads >= 1 && cfg.queries >= 1);
    assert!(cfg.write_pct <= 100, "--write-pct is a percentage");

    eprintln!(
        "loading {} lines of CongressActs (seed {}) ...",
        cfg.lines, cfg.seed
    );
    let dataset = generate(CorpusKind::CongressActs, cfg.lines, cfg.seed);
    // The old fixed 2048-frame pool held the whole 200-line corpus, so
    // every measured run reported a 100% hit rate and eviction-path
    // regressions were invisible. The auto default keeps the pool well
    // under the corpus footprint (~6 pages/line across the four
    // representations) while staying big enough for load-time pins.
    let pool_frames = if cfg.pool_frames > 0 {
        cfg.pool_frames
    } else {
        (cfg.lines / 4).clamp(192, 2048)
    };
    let db = Database::in_memory(pool_frames).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(cfg.seed),
        kmap_k: 8,
        staccato: StaccatoParams::new(10, 8),
        parallelism: cfg.threads.max(2),
    };
    let session = Arc::new(Staccato::load(db, &dataset, &opts).expect("load"));
    let disk_pages = session.store().db().pool().page_count();
    eprintln!(
        "pool: {pool_frames} frames over {disk_pages} disk pages ({:.0}% resident)",
        (pool_frames as f64 / disk_pages.max(1) as f64 * 100.0).min(100.0)
    );
    let postings = session
        .register_index(
            &staccato_automata::Trie::build(["public", "president", "commission"]),
            "inv",
        )
        .expect("index");
    eprintln!("index 'inv' registered ({postings} postings)");

    // Warm the pool and the compiled-query cache once so both runs
    // measure steady-state traffic, not first-touch compilation.
    for sql in WORKLOAD {
        session.sql(sql).expect("warm-up query");
    }

    // Pool and cache counters are session-lifetime monotonic, so each
    // run is attributed by sampling before/after — load, index build,
    // and warm-up traffic never pollute the reported hit rates.
    let (pool0, cache0) = (session.pool_stats(), session.query_cache_stats());
    let serial = run_clients(&session, 1, cfg.queries * cfg.threads, cfg.write_pct, "s");
    let (pool1, cache1) = (session.pool_stats(), session.query_cache_stats());
    let concurrent = run_clients(&session, cfg.threads, cfg.queries, cfg.write_pct, "c");
    let (pool2, cache2) = (session.pool_stats(), session.query_cache_stats());

    let serial_pool = pool1.delta_since(pool0);
    let concurrent_pool = pool2.delta_since(pool1);
    let total = cfg.threads * cfg.queries;
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"corpus\": \"CongressActs\",\n  \"lines\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \"queries_per_thread\": {},\n  \"total_queries\": {},\n  \"workload_size\": {},\n  \"pool_frames\": {},\n  \"disk_pages\": {},\n  \"write_pct\": {},\n  \"concurrent\": {},\n  \"serial\": {}\n}}\n",
        cfg.lines,
        cfg.seed,
        cfg.threads,
        cfg.queries,
        total,
        WORKLOAD.len(),
        pool_frames,
        disk_pages,
        cfg.write_pct,
        run_json(&concurrent, concurrent_pool, cache_hit_rate(cache1, cache2)),
        run_json(&serial, serial_pool, cache_hit_rate(cache0, cache1)),
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH json");

    println!(
        "serial      : {:>9.1} qps  p50 {:>9}  p95 {:>9}  pool hit {:.2}%  cache hit {:.2}%",
        serial.qps,
        fmt_duration(serial.p50),
        fmt_duration(serial.p95),
        serial_pool.hit_rate() * 100.0,
        cache_hit_rate(cache0, cache1) * 100.0,
    );
    println!(
        "{} threads   : {:>9.1} qps  p50 {:>9}  p95 {:>9}  pool hit {:.2}%  cache hit {:.2}%  ({:.2}x serial)",
        cfg.threads,
        concurrent.qps,
        fmt_duration(concurrent.p50),
        fmt_duration(concurrent.p95),
        concurrent_pool.hit_rate() * 100.0,
        cache_hit_rate(cache1, cache2) * 100.0,
        concurrent.qps / serial.qps.max(1e-9)
    );
    println!("-> {}", cfg.out);
}

/// Query-cache hit rate over one run: the hits/misses accumulated
/// between the two samples (1.0 for an idle window).
fn cache_hit_rate(
    before: staccato_query::QueryCacheStats,
    after: staccato_query::QueryCacheStats,
) -> f64 {
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    if hits + misses == 0 {
        1.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// Fire `queries_per_thread` statements from each of `threads` clients,
/// all against one shared session, and fold the per-query latencies.
/// Statement `i` of a client is a write iff `(i * write_pct) % 100 <
/// write_pct` — Bresenham's spread: exactly `write_pct`% of any run,
/// evenly interleaved, identical across runs, never a coin flip.
fn run_clients(
    session: &Arc<Staccato>,
    threads: usize,
    queries_per_thread: usize,
    write_pct: usize,
    run_tag: &str,
) -> RunStats {
    let started = Instant::now();
    let per_thread: Vec<(Vec<Duration>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let session = Arc::clone(session);
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(queries_per_thread);
                    let mut writes = 0usize;
                    for i in 0..queries_per_thread {
                        if (i * write_pct) % 100 < write_pct && write_pct > 0 {
                            // Thread-unique names: no two clients (and no
                            // two runs) ever collide on a document.
                            let sql = format!(
                                "INSERT INTO StaccatoData (DocName, Data) VALUES \
                                 ('{run_tag}-t{t}-i{i}.png', \
                                 'the committee reported bill number {i} of thread {t}')"
                            );
                            let q = Instant::now();
                            let out = session.sql(&sql).expect("workload insert");
                            lats.push(q.elapsed());
                            assert!(out.ingest.is_some());
                            writes += 1;
                            continue;
                        }
                        // Offset per thread so clients interleave the mix
                        // instead of marching in lockstep.
                        let sql = WORKLOAD[(t + i) % WORKLOAD.len()];
                        let q = Instant::now();
                        let out = session.sql(sql).expect("workload query");
                        lats.push(q.elapsed());
                        assert!(out.answers.len() <= 100);
                    }
                    (lats, writes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();
    let writes = per_thread.iter().map(|(_, w)| w).sum();
    let mut latencies: Vec<Duration> = per_thread.into_iter().flat_map(|(l, _)| l).collect();
    latencies.sort();
    let total = latencies.len();
    let pct = |p: f64| latencies[(((total - 1) as f64) * p) as usize];
    RunStats {
        wall,
        qps: total as f64 / wall.as_secs_f64().max(1e-12),
        p50: pct(0.50),
        p95: pct(0.95),
        writes,
    }
}

fn run_json(r: &RunStats, pool: staccato_storage::PoolStats, cache_hit_rate: f64) -> String {
    format!(
        "{{\"wall_secs\": {:.6}, \"qps\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"writes\": {}, \"pool\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.6}}}, \"query_cache_hit_rate\": {:.6}}}",
        r.wall.as_secs_f64(),
        r.qps,
        r.p50.as_secs_f64() * 1e3,
        r.p95.as_secs_f64() * 1e3,
        r.writes,
        pool.hits,
        pool.misses,
        pool.evictions,
        pool.hit_rate(),
        cache_hit_rate,
    )
}
