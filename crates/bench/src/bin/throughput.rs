//! Concurrent-throughput harness: N client threads firing M queries each
//! at one shared `Arc<Staccato>` session, the workload shape of
//! retrieval pipelines doing many small probabilistic lookups at once.
//!
//! ```text
//! throughput [--threads N] [--queries M] [--lines L] [--seed S]
//!            [--pool-frames F] [--write-pct P] [--sweep 1,2,4,8,16]
//!            [--out PATH]
//! ```
//!
//! The workload is a fixed mixed set — `LIKE` and `REGEXP` filescans
//! over every representation, an index-probe query, and a streaming
//! aggregate — issued through the SQL surface so the compiled-query
//! cache is on the measured path.
//!
//! The harness measures a *curve*, not a point: it sweeps the thread
//! counts in `--sweep` (always including 1 and `--threads`), issuing
//! the **same total statement count** at every point so phases are
//! comparable, and emits a `scaling` array to `BENCH_throughput.json` —
//! per-point QPS, p50/p95, pool/cache hit rates, speedup vs the serial
//! phase, and parallel efficiency (speedup ÷ threads). Each phase
//! records its own derived seed and write tag, so any single point can
//! be reproduced in isolation. The `serial` / `concurrent` top-level
//! objects are the sweep's 1-thread and `--threads` entries, kept for
//! dashboards and CI gates that predate the curve.
//!
//! `--write-pct P` turns the workload into a mixed read/write stream:
//! a deterministic `P%` of each client's statements become single-row
//! `INSERT INTO StaccatoData` batches with thread-unique document
//! names, so writers contend on the ingest latch and every write
//! invalidates the compiled-query cache under the readers — the
//! worst-case interaction the latch design has to absorb.

use staccato_bench::timing::fmt_duration;
use staccato_core::StaccatoParams;
use staccato_ocr::{generate, ChannelConfig, CorpusKind};
use staccato_query::store::LoadOptions;
use staccato_query::Staccato;
use staccato_storage::{Database, SyncPolicy};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The mixed query set, shaped like Table 6 traffic: keyword and regex
/// predicates, every representation, one anchored probe candidate, one
/// aggregate.
const WORKLOAD: &[&str] = &[
    "SELECT DataKey, Prob FROM MAPData WHERE Data REGEXP 'President' LIMIT 100",
    "SELECT DataKey, Prob FROM StaccatoData WHERE Data LIKE '%Commission%' LIMIT 100",
    "SELECT DataKey FROM StaccatoData WHERE Data REGEXP 'Public Law (8|9)\\d' LIMIT 100",
    "SELECT DataKey, Prob FROM kMAPData WHERE Data REGEXP 'United States' LIMIT 50",
    "SELECT COUNT(*) FROM MAPData WHERE Data LIKE '%Act%'",
    "SELECT DataKey FROM MAPData WHERE Data REGEXP 'employment' AND Prob >= 0.1 LIMIT 100",
];

struct Config {
    threads: usize,
    queries: usize,
    lines: usize,
    seed: u64,
    /// Buffer-pool frames; 0 sizes the pool *below* the corpus so
    /// scans actually miss and evict (see `main`).
    pool_frames: usize,
    /// Percent of each client's statements that are writes (0-100).
    write_pct: usize,
    /// Thread counts to sweep (1 and `threads` are always included).
    sweep: Vec<usize>,
    out: String,
}

struct RunStats {
    wall: Duration,
    qps: f64,
    p50: Duration,
    p95: Duration,
    writes: usize,
}

/// One point on the scaling curve, with everything needed to reproduce
/// it: the thread count, the derived per-phase seed, and the totals.
struct ScalePoint {
    threads: usize,
    phase_seed: u64,
    total_queries: usize,
    run: RunStats,
    pool: staccato_storage::PoolStats,
    cache_hit_rate: f64,
}

fn main() {
    let mut cfg = Config {
        threads: 8,
        queries: 64,
        lines: 1000,
        seed: 42,
        pool_frames: 0,
        write_pct: 0,
        sweep: vec![1, 2, 4, 8, 16],
        out: "BENCH_throughput.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match a.as_str() {
            "--threads" => cfg.threads = next("--threads").parse().expect("threads"),
            "--queries" => cfg.queries = next("--queries").parse().expect("queries"),
            "--lines" => cfg.lines = next("--lines").parse().expect("lines"),
            "--seed" => cfg.seed = next("--seed").parse().expect("seed"),
            "--pool-frames" => {
                cfg.pool_frames = next("--pool-frames").parse().expect("pool-frames")
            }
            "--write-pct" => cfg.write_pct = next("--write-pct").parse().expect("write-pct"),
            "--sweep" => {
                cfg.sweep = next("--sweep")
                    .split(',')
                    .map(|s| s.trim().parse().expect("sweep entry"))
                    .collect();
            }
            "--out" => cfg.out = next("--out").clone(),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(cfg.threads >= 1 && cfg.queries >= 1);
    assert!(cfg.write_pct <= 100, "--write-pct is a percentage");
    // The serial baseline and the headline point are always on the
    // curve; sort and dedup so the sweep runs smallest-first.
    cfg.sweep.push(1);
    cfg.sweep.push(cfg.threads);
    cfg.sweep.sort_unstable();
    cfg.sweep.dedup();
    assert!(cfg.sweep.iter().all(|&t| t >= 1), "sweep entries >= 1");

    eprintln!(
        "loading {} lines of CongressActs (seed {}) ...",
        cfg.lines, cfg.seed
    );
    let dataset = generate(CorpusKind::CongressActs, cfg.lines, cfg.seed);
    // The old fixed 2048-frame pool held the whole 200-line corpus, so
    // every measured run reported a 100% hit rate and eviction-path
    // regressions were invisible. The auto default keeps the pool well
    // under the corpus footprint (~6 pages/line across the four
    // representations) while staying big enough for load-time pins.
    let pool_frames = if cfg.pool_frames > 0 {
        cfg.pool_frames
    } else {
        (cfg.lines / 4).clamp(192, 2048)
    };
    let db = Database::in_memory(pool_frames).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(cfg.seed),
        kmap_k: 8,
        staccato: StaccatoParams::new(10, 8),
        parallelism: cfg.threads.max(2),
    };
    let session = Arc::new(Staccato::load(db, &dataset, &opts).expect("load"));
    let disk_pages = session.store().db().pool().page_count();
    eprintln!(
        "pool: {pool_frames} frames over {disk_pages} disk pages ({:.0}% resident)",
        (pool_frames as f64 / disk_pages.max(1) as f64 * 100.0).min(100.0)
    );
    // Mixed-mode writes go through the durable ingest path: a
    // group-commit WAL on a scratch directory, so the recorded fsync /
    // amortization counters reflect the production write path instead of
    // a WAL-less in-memory shortcut.
    let wal_dir = (cfg.write_pct > 0).then(|| {
        let dir = std::env::temp_dir().join(format!("staccato_tp_wal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        session
            .attach_wal(&dir, SyncPolicy::Commit)
            .expect("attach WAL");
        dir
    });
    let postings = session
        .register_index(
            &staccato_automata::Trie::build(["public", "president", "commission"]),
            "inv",
        )
        .expect("index");
    eprintln!("index 'inv' registered ({postings} postings)");

    // Warm the pool and the compiled-query cache once so every phase
    // measures steady-state traffic, not first-touch compilation.
    for sql in WORKLOAD {
        session.sql(sql).expect("warm-up query");
    }

    // Every phase issues the same statement total, split across its
    // clients, so the curve compares equal work at every point. Phases
    // whose thread count does not divide the total spread the remainder
    // over the first clients.
    let total = cfg.threads * cfg.queries;
    let mut points: Vec<ScalePoint> = Vec::with_capacity(cfg.sweep.len());
    for &t in &cfg.sweep {
        // Pool and cache counters are session-lifetime monotonic, so
        // each phase is attributed by sampling before/after — load,
        // index build, warm-up, and earlier phases never pollute it.
        let (pool_before, cache_before) = (session.pool_stats(), session.query_cache_stats());
        // Per-phase seed: derived, recorded, and used in the write tag,
        // so any single point reproduces without rerunning the sweep.
        let phase_seed = cfg.seed.wrapping_add(t as u64);
        let tag = format!("p{t}");
        let run = run_clients(&session, t, total, cfg.write_pct, &tag);
        let (pool_after, cache_after) = (session.pool_stats(), session.query_cache_stats());
        let point = ScalePoint {
            threads: t,
            phase_seed,
            total_queries: total,
            run,
            pool: pool_after.delta_since(pool_before),
            cache_hit_rate: cache_hit_rate(cache_before, cache_after),
        };
        eprintln!(
            "{:>2} thread(s): {:>9.1} qps  p50 {:>9}  p95 {:>9}",
            t,
            point.run.qps,
            fmt_duration(point.run.p50),
            fmt_duration(point.run.p95),
        );
        points.push(point);
    }

    // The machine bounds the curve: CPU-bound statements cannot scale
    // past the core count, so the JSON records it — a 1.1x speedup on a
    // 1-core container and a 1.1x speedup on a 16-core box are opposite
    // verdicts on the same code.
    let cpu_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let serial = points
        .iter()
        .find(|p| p.threads == 1)
        .expect("sweep always contains 1");
    let headline = points
        .iter()
        .find(|p| p.threads == cfg.threads)
        .expect("sweep always contains --threads");
    let serial_qps = serial.run.qps;

    let scaling: Vec<String> = points.iter().map(|p| point_json(p, serial_qps)).collect();
    // WAL group-commit counters over the whole mixed run (all zeros when
    // --write-pct 0 leaves the WAL detached).
    let ing = session.ingest_stats();
    let wal_json = format!(
        "{{\"records\": {}, \"bytes\": {}, \"fsyncs\": {}, \"group_commits\": {}, \"batches_per_fsync\": {:.4}, \"flush_wait_p95_ms\": {:.4}, \"segments_deleted\": {}}}",
        ing.wal_records_appended,
        ing.wal_bytes_logged,
        ing.wal_fsyncs,
        ing.wal_group_commits,
        ing.wal_batches_per_fsync,
        ing.wal_flush_wait_p95.as_secs_f64() * 1e3,
        ing.wal_segments_deleted,
    );
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"corpus\": \"CongressActs\",\n  \"lines\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \"queries_per_thread\": {},\n  \"total_queries\": {},\n  \"workload_size\": {},\n  \"pool_frames\": {},\n  \"disk_pages\": {},\n  \"write_pct\": {},\n  \"cpu_cores\": {},\n  \"scaling\": [\n    {}\n  ],\n  \"wal\": {},\n  \"concurrent\": {},\n  \"serial\": {}\n}}\n",
        cfg.lines,
        cfg.seed,
        cfg.threads,
        cfg.queries,
        total,
        WORKLOAD.len(),
        pool_frames,
        disk_pages,
        cfg.write_pct,
        cpu_cores,
        scaling.join(",\n    "),
        wal_json,
        run_json(&headline.run, headline.pool, headline.cache_hit_rate),
        run_json(&serial.run, serial.pool, serial.cache_hit_rate),
    );
    std::fs::write(&cfg.out, &json).expect("write BENCH json");
    if let Some(dir) = &wal_dir {
        println!(
            "wal         : {} records, {} fsyncs, {:.2} batches/fsync, flush-wait p95 {}",
            ing.wal_records_appended,
            ing.wal_fsyncs,
            ing.wal_batches_per_fsync,
            fmt_duration(ing.wal_flush_wait_p95),
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    println!(
        "serial      : {:>9.1} qps  p50 {:>9}  p95 {:>9}  pool hit {:.2}%  cache hit {:.2}%",
        serial.run.qps,
        fmt_duration(serial.run.p50),
        fmt_duration(serial.run.p95),
        serial.pool.hit_rate() * 100.0,
        serial.cache_hit_rate * 100.0,
    );
    println!(
        "{} threads   : {:>9.1} qps  p50 {:>9}  p95 {:>9}  pool hit {:.2}%  cache hit {:.2}%  ({:.2}x serial)",
        cfg.threads,
        headline.run.qps,
        fmt_duration(headline.run.p50),
        fmt_duration(headline.run.p95),
        headline.pool.hit_rate() * 100.0,
        headline.cache_hit_rate * 100.0,
        headline.run.qps / serial_qps.max(1e-9)
    );
    println!("-> {}", cfg.out);
}

/// Query-cache hit rate over one run: the hits/misses accumulated
/// between the two samples (1.0 for an idle window).
fn cache_hit_rate(
    before: staccato_query::QueryCacheStats,
    after: staccato_query::QueryCacheStats,
) -> f64 {
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    if hits + misses == 0 {
        1.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

/// Fire `total_queries` statements split across `threads` clients, all
/// against one shared session, and fold the per-query latencies.
/// Statement `i` of a client is a write iff `(i * write_pct) % 100 <
/// write_pct` — Bresenham's spread: exactly `write_pct`% of any run,
/// evenly interleaved, identical across runs, never a coin flip.
fn run_clients(
    session: &Arc<Staccato>,
    threads: usize,
    total_queries: usize,
    write_pct: usize,
    run_tag: &str,
) -> RunStats {
    let started = Instant::now();
    let per_thread: Vec<(Vec<Duration>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let session = Arc::clone(session);
                let run_tag = &run_tag;
                // Spread any non-dividing remainder over the first
                // clients so the phase total is exact.
                let queries_per_thread =
                    total_queries / threads + usize::from(t < total_queries % threads);
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(queries_per_thread);
                    let mut writes = 0usize;
                    for i in 0..queries_per_thread {
                        if (i * write_pct) % 100 < write_pct && write_pct > 0 {
                            // Thread-unique names: no two clients (and no
                            // two runs) ever collide on a document.
                            let sql = format!(
                                "INSERT INTO StaccatoData (DocName, Data) VALUES \
                                 ('{run_tag}-t{t}-i{i}.png', \
                                 'the committee reported bill number {i} of thread {t}')"
                            );
                            let q = Instant::now();
                            let out = session.sql(&sql).expect("workload insert");
                            lats.push(q.elapsed());
                            assert!(out.ingest.is_some());
                            writes += 1;
                            continue;
                        }
                        // Offset per thread so clients interleave the mix
                        // instead of marching in lockstep.
                        let sql = WORKLOAD[(t + i) % WORKLOAD.len()];
                        let q = Instant::now();
                        let out = session.sql(sql).expect("workload query");
                        lats.push(q.elapsed());
                        assert!(out.answers.len() <= 100);
                    }
                    (lats, writes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();
    let writes = per_thread.iter().map(|(_, w)| w).sum();
    let mut latencies: Vec<Duration> = per_thread.into_iter().flat_map(|(l, _)| l).collect();
    latencies.sort();
    let total = latencies.len();
    let pct = |p: f64| latencies[(((total - 1) as f64) * p) as usize];
    RunStats {
        wall,
        qps: total as f64 / wall.as_secs_f64().max(1e-12),
        p50: pct(0.50),
        p95: pct(0.95),
        writes,
    }
}

/// One `scaling` array element: the point's identity (threads, seed,
/// totals), its measurements, and its position relative to serial.
fn point_json(p: &ScalePoint, serial_qps: f64) -> String {
    let speedup = p.run.qps / serial_qps.max(1e-9);
    format!(
        "{{\"threads\": {}, \"phase_seed\": {}, \"total_queries\": {}, \"wall_secs\": {:.6}, \"qps\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"writes\": {}, \"pool_hit_rate\": {:.6}, \"query_cache_hit_rate\": {:.6}, \"speedup_vs_serial\": {:.4}, \"efficiency\": {:.4}}}",
        p.threads,
        p.phase_seed,
        p.total_queries,
        p.run.wall.as_secs_f64(),
        p.run.qps,
        p.run.p50.as_secs_f64() * 1e3,
        p.run.p95.as_secs_f64() * 1e3,
        p.run.writes,
        p.pool.hit_rate(),
        p.cache_hit_rate,
        speedup,
        speedup / p.threads as f64,
    )
}

fn run_json(r: &RunStats, pool: staccato_storage::PoolStats, cache_hit_rate: f64) -> String {
    format!(
        "{{\"wall_secs\": {:.6}, \"qps\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"writes\": {}, \"pool\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.6}}}, \"query_cache_hit_rate\": {:.6}}}",
        r.wall.as_secs_f64(),
        r.qps,
        r.p50.as_secs_f64() * 1e3,
        r.p95.as_secs_f64() * 1e3,
        r.writes,
        pool.hits,
        pool.misses,
        pool.evictions,
        pool.hit_rate(),
        cache_hit_rate,
    )
}
