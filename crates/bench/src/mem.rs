//! In-memory representation cache for parameter sweeps.
//!
//! Sweep experiments (Figures 6, 15, 16, 20, …) evaluate dozens of
//! `(m, k)` settings; loading a full RDBMS store per setting would
//! measure mostly construction. `MemCorpus` builds the expensive full
//! SFAs once, derives k-MAP / Staccato variants on demand (memoized), and
//! keeps all SFA representations *encoded* — every evaluation decodes the
//! blob first, so measured runtimes keep the data-volume-dominated shape
//! of the paper's buffer-pool reads. Table 4's headline numbers still
//! come from the real storage engine (experiment `t4`).

use staccato_core::{approximate, StaccatoParams};
use staccato_ocr::{generate, Channel, ChannelConfig, CorpusKind, Dataset};
use staccato_query::exec::{rank_answers, Answer};
use staccato_query::{eval_sfa, eval_strings, Query};
use staccato_sfa::{codec, k_best_paths};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// An `m` large enough to mean "every transition is its own chunk" — the
/// paper's `Max` setting.
pub const M_MAX: usize = 1 << 20;

type KmapRep = Arc<Vec<Vec<(String, f64)>>>;
type StacRep = Arc<Vec<Vec<u8>>>;

/// A corpus with its OCR output held in memory.
pub struct MemCorpus {
    /// The generated clean dataset.
    pub dataset: Dataset,
    /// Clean line per DataKey.
    pub clean: Vec<String>,
    /// Encoded full SFA per line.
    pub full_blobs: Vec<Vec<u8>>,
    kmap_cache: HashMap<usize, KmapRep>,
    stac_cache: HashMap<(usize, usize), StacRep>,
    parallelism: usize,
}

fn par_map<T: Send + Sync, U: Send>(par: usize, items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let chunk = items.len().div_ceil(par.max(1)).max(1);
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (slice, dst) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in slice.iter().zip(dst.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|o| o.expect("mapped")).collect()
}

impl MemCorpus {
    /// Generate a corpus and run the OCR channel over every line.
    pub fn build(kind: CorpusKind, lines: usize, seed: u64, channel: ChannelConfig) -> MemCorpus {
        let dataset = generate(kind, lines, seed);
        let ch = Channel::new(channel);
        let work: Vec<(u64, String)> = dataset
            .lines()
            .enumerate()
            .map(|(i, (_, _, l))| (i as u64, l.to_string()))
            .collect();
        let par = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let full_blobs = par_map(par, &work, |(id, text)| {
            codec::encode(&ch.line_to_sfa(text, *id))
        });
        let clean = work.into_iter().map(|(_, l)| l).collect();
        MemCorpus {
            dataset,
            clean,
            full_blobs,
            kmap_cache: HashMap::new(),
            stac_cache: HashMap::new(),
            parallelism: par,
        }
    }

    /// Number of lines (= SFAs).
    pub fn line_count(&self) -> usize {
        self.clean.len()
    }

    /// Total encoded FullSFA bytes (Table 2's "Size as SFAs").
    pub fn full_bytes(&self) -> u64 {
        self.full_blobs.iter().map(|b| b.len() as u64).sum()
    }

    /// Total clean-text bytes.
    pub fn text_bytes(&self) -> u64 {
        self.clean.iter().map(|l| l.len() as u64 + 1).sum()
    }

    /// The k-MAP representation (memoized).
    pub fn kmap(&mut self, k: usize) -> KmapRep {
        if let Some(r) = self.kmap_cache.get(&k) {
            return r.clone();
        }
        let rep: Vec<Vec<(String, f64)>> = par_map(self.parallelism, &self.full_blobs, |blob| {
            let sfa = codec::decode(blob).expect("stored blob");
            k_best_paths(&sfa, k)
                .into_iter()
                .map(|p| (p.string, p.prob))
                .collect()
        });
        let rep = Arc::new(rep);
        self.kmap_cache.insert(k, rep.clone());
        rep
    }

    /// The Staccato representation (memoized), kept encoded.
    pub fn staccato(&mut self, m: usize, k: usize) -> StacRep {
        if let Some(r) = self.stac_cache.get(&(m, k)) {
            return r.clone();
        }
        let params = StaccatoParams::new(m, k);
        let rep: Vec<Vec<u8>> = par_map(self.parallelism, &self.full_blobs, |blob| {
            let sfa = codec::decode(blob).expect("stored blob");
            codec::encode(&approximate(&sfa, params))
        });
        let rep = Arc::new(rep);
        self.stac_cache.insert((m, k), rep.clone());
        rep
    }

    /// k-MAP bytes including Table 1's 16-byte per-tuple metadata.
    pub fn kmap_bytes(&mut self, k: usize) -> u64 {
        self.kmap(k)
            .iter()
            .map(|strs| strs.iter().map(|(s, _)| s.len() as u64 + 16).sum::<u64>())
            .sum()
    }

    /// Staccato bytes (encoded graph blobs).
    pub fn staccato_bytes(&mut self, m: usize, k: usize) -> u64 {
        self.staccato(m, k).iter().map(|b| b.len() as u64).sum()
    }

    /// Ground truth for a query.
    pub fn ground_truth(&self, query: &Query) -> BTreeSet<i64> {
        self.clean
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                query
                    .dfa
                    .is_accept(query.dfa.run_from(query.dfa.start(), l))
            })
            .map(|(i, _)| i as i64)
            .collect()
    }

    /// MAP filescan (k-MAP with only the rank-0 string).
    pub fn eval_map(&mut self, query: &Query, num_ans: usize) -> Vec<Answer> {
        let rep = self.kmap(1);
        let answers = rep
            .iter()
            .enumerate()
            .map(|(i, strs)| Answer {
                data_key: i as i64,
                probability: eval_strings(
                    &query.dfa,
                    strs.iter().take(1).map(|(s, p)| (s.as_str(), *p)),
                ),
            })
            .collect();
        rank_answers(answers, num_ans)
    }

    /// k-MAP filescan.
    pub fn eval_kmap(&mut self, k: usize, query: &Query, num_ans: usize) -> Vec<Answer> {
        let rep = self.kmap(k);
        let answers = rep
            .iter()
            .enumerate()
            .map(|(i, strs)| Answer {
                data_key: i as i64,
                probability: eval_strings(&query.dfa, strs.iter().map(|(s, p)| (s.as_str(), *p))),
            })
            .collect();
        rank_answers(answers, num_ans)
    }

    /// FullSFA filescan (decodes every blob, like reading it from pages).
    pub fn eval_full(&self, query: &Query, num_ans: usize) -> Vec<Answer> {
        let answers = self
            .full_blobs
            .iter()
            .enumerate()
            .map(|(i, blob)| {
                let sfa = codec::decode(blob).expect("stored blob");
                Answer {
                    data_key: i as i64,
                    probability: eval_sfa(&query.dfa, &sfa),
                }
            })
            .collect();
        rank_answers(answers, num_ans)
    }

    /// Staccato filescan at `(m, k)`.
    pub fn eval_staccato(
        &mut self,
        m: usize,
        k: usize,
        query: &Query,
        num_ans: usize,
    ) -> Vec<Answer> {
        let rep = self.staccato(m, k);
        let answers = rep
            .iter()
            .enumerate()
            .map(|(i, blob)| {
                let sfa = codec::decode(blob).expect("stored blob");
                Answer {
                    data_key: i as i64,
                    probability: eval_sfa(&query.dfa, &sfa),
                }
            })
            .collect();
        rank_answers(answers, num_ans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staccato_query::metrics::evaluate_answers;

    fn tiny() -> MemCorpus {
        MemCorpus::build(CorpusKind::DbPapers, 15, 3, ChannelConfig::compact(3))
    }

    #[test]
    fn build_produces_one_blob_per_line() {
        let c = tiny();
        assert_eq!(c.line_count(), 15);
        assert_eq!(c.full_blobs.len(), 15);
        assert!(c.full_bytes() > c.text_bytes());
    }

    #[test]
    fn caches_are_memoized() {
        let mut c = tiny();
        let a = c.kmap(5);
        let b = c.kmap(5);
        assert!(Arc::ptr_eq(&a, &b));
        let s1 = c.staccato(4, 3);
        let s2 = c.staccato(4, 3);
        assert!(Arc::ptr_eq(&s1, &s2));
        assert!(!Arc::ptr_eq(&c.staccato(5, 3), &s1));
    }

    #[test]
    fn recall_ordering_holds_in_memory() {
        let mut c = tiny();
        let q = Query::keyword("data").unwrap();
        let truth = c.ground_truth(&q);
        if truth.is_empty() {
            return; // tiny corpus may lack the term; other tests cover it
        }
        let m_map = evaluate_answers(&c.eval_map(&q, 100), &truth);
        let m_full = evaluate_answers(&c.eval_full(&q, 100), &truth);
        assert!(m_full.recall >= m_map.recall - 1e-12);
        assert!(
            (m_full.recall - 1.0).abs() < 1e-9,
            "FullSFA recall must be 1"
        );
    }

    #[test]
    fn staccato_m_max_prunes_only() {
        let mut c = tiny();
        let rep = c.staccato(M_MAX, 2);
        let sfa = codec::decode(&rep[0]).unwrap();
        for (_, e) in sfa.edges() {
            assert!(e.emissions.len() <= 2);
        }
    }

    #[test]
    fn sizes_grow_with_k() {
        let mut c = tiny();
        assert!(c.kmap_bytes(5) > c.kmap_bytes(1));
        assert!(c.staccato_bytes(4, 5) >= c.staccato_bytes(4, 1));
    }
}
