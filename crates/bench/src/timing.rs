//! Wall-clock measurement helpers.

use std::time::{Duration, Instant};

/// Run `f` `reps` times and return the median duration (the paper reports
/// runtimes averaged over 7 runs; the median is robust to the first-run
/// cache warm-up).
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    assert!(reps >= 1);
    let mut samples: Vec<Duration> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// Format a duration in adaptive units for result tables.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust_to_one_slow_run() {
        let mut calls = 0;
        let d = time_median(5, || {
            calls += 1;
            if calls == 1 {
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        assert!(
            d < Duration::from_millis(15),
            "median leaked the outlier: {d:?}"
        );
        assert_eq!(calls, 5);
    }

    #[test]
    fn formatting_units() {
        assert!(fmt_duration(Duration::from_secs(2)).ends_with('s'));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("us"));
    }
}
