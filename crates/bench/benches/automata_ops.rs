//! Criterion bench for the automata substrate: pattern compilation,
//! DFA execution, Viterbi and k-best inference.

use criterion::{criterion_group, criterion_main, Criterion};
use staccato_automata::{parse, Dfa};
use staccato_ocr::{Channel, ChannelConfig};
use staccato_sfa::{k_best_paths, map_path};
use std::hint::black_box;
use std::time::Duration;

fn bench_automata(c: &mut Criterion) {
    let mut group = c.benchmark_group("automata");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("compile/keyword", |b| {
        b.iter(|| black_box(Dfa::compile_containment(&parse("President").unwrap())))
    });
    group.bench_function("compile/regex", |b| {
        b.iter(|| {
            black_box(Dfa::compile_containment(
                &parse(r"Public Law (8|9)\d").unwrap(),
            ))
        })
    });

    let dfa = Dfa::compile_containment(&parse(r"U.S.C. 2\d\d\d").unwrap());
    let doc = "the act referenced in U.S.C. 2345 shall be amended by striking section 4";
    group.bench_function("run/containment_75_chars", |b| {
        b.iter(|| black_box(dfa.is_accept(dfa.run_from(dfa.start(), doc))))
    });

    let channel = Channel::new(ChannelConfig {
        seed: 3,
        ..ChannelConfig::default()
    });
    let sfa = channel.line_to_sfa(doc, 3);
    group.bench_function("viterbi/75_chars_full_alphabet", |b| {
        b.iter(|| black_box(map_path(&sfa)))
    });
    group.bench_function("kbest25/75_chars_full_alphabet", |b| {
        b.iter(|| black_box(k_best_paths(&sfa, 25)))
    });
    group.finish();
}

criterion_group!(benches, bench_automata);
criterion_main!(benches);
