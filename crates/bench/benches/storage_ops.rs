//! Criterion bench for the storage substrate: B+-tree point ops, heap
//! scans, and blob reads (the FullSFA access path).

use criterion::{criterion_group, criterion_main, Criterion};
use staccato_storage::{BTree, BlobStore, BufferPool, HeapFile, MemDisk};
use std::hint::black_box;
use std::time::Duration;

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    // B+-tree with 10k keys.
    let pool = BufferPool::new(Box::new(MemDisk::new()), 4096);
    let tree = BTree::create(&pool).unwrap();
    for i in 0..10_000u64 {
        tree.insert(
            &pool,
            format!("key{:07}", (i * 2654435761) % 10_000).as_bytes(),
            i,
        )
        .unwrap();
    }
    group.bench_function("btree/get_hit", |b| {
        b.iter(|| black_box(tree.get(&pool, b"key0004217").unwrap()))
    });
    group.bench_function("btree/prefix_scan_10", |b| {
        b.iter(|| black_box(tree.scan_prefix(&pool, b"key000421").unwrap()))
    });

    // Heap with 2k tuples of 200 bytes.
    let heap = HeapFile::create(&pool).unwrap();
    let tuple = vec![7u8; 200];
    for _ in 0..2000 {
        heap.insert(&pool, &tuple).unwrap();
    }
    group.bench_function("heap/full_scan_2k_tuples", |b| {
        b.iter(|| black_box(heap.scan(&pool).count()))
    });

    // A 600 kB blob — the paper's per-line SFA size.
    let blob_data: Vec<u8> = (0..600_000u32).map(|i| i as u8).collect();
    let blob = BlobStore::put(&pool, &blob_data).unwrap();
    group.bench_function("blob/read_600kB", |b| {
        b.iter(|| black_box(BlobStore::get(&pool, blob).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
