//! Criterion bench for Figure 8: Staccato construction time vs SFA size
//! and vs the m/k parameters.

use criterion::{criterion_group, criterion_main, Criterion};
use staccato_core::{approximate, StaccatoParams};
use staccato_ocr::{Channel, ChannelConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_construction(c: &mut Criterion) {
    let channel = Channel::new(ChannelConfig {
        seed: 7,
        ..ChannelConfig::default()
    });
    let line = |n: usize| -> String {
        "public law of the united states congress "
            .chars()
            .cycle()
            .take(n)
            .collect()
    };
    let mut group = c.benchmark_group("fig8_construction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [50usize, 150] {
        let sfa = channel.line_to_sfa(&line(n), n as u64);
        group.bench_function(format!("n{n}/m1_k25"), |b| {
            b.iter(|| black_box(approximate(&sfa, StaccatoParams::new(1, 25))))
        });
        group.bench_function(format!("n{n}/m40_k25"), |b| {
            b.iter(|| black_box(approximate(&sfa, StaccatoParams::new(40, 25))))
        });
    }
    // k sweep at fixed n (appendix Figure 18).
    let sfa = channel.line_to_sfa(&line(100), 1);
    for k in [5usize, 25, 100] {
        group.bench_function(format!("n100/m20_k{k}"), |b| {
            b.iter(|| black_box(approximate(&sfa, StaccatoParams::new(20, k))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
