//! Criterion bench for Table 4's runtime columns: one session-planned
//! filescan per representation over the same corpus, through the real
//! storage engine.
//!
//! Expected shape (paper §5.1): MAP ≪ k-MAP ≪ STACCATO ≪ FullSFA, with
//! FullSFA 2–3 orders of magnitude above MAP.

use criterion::{criterion_group, criterion_main, Criterion};
use staccato_core::StaccatoParams;
use staccato_ocr::{generate, ChannelConfig, CorpusKind};
use staccato_query::store::LoadOptions;
use staccato_query::{Approach, QueryRequest, Staccato};
use staccato_storage::Database;
use std::hint::black_box;
use std::time::Duration;

fn bench_approaches(c: &mut Criterion) {
    let dataset = generate(CorpusKind::CongressActs, 120, 42);
    let db = Database::in_memory(8192).unwrap();
    let opts = LoadOptions {
        channel: ChannelConfig {
            seed: 42,
            ..ChannelConfig::default()
        },
        kmap_k: 25,
        staccato: StaccatoParams::new(40, 25),
        ..Default::default()
    };
    let session = Staccato::load(db, &dataset, &opts).unwrap();
    let keyword = QueryRequest::keyword("President").num_ans(100);
    let regex = QueryRequest::regex(r"U.S.C. 2\d\d\d").num_ans(100);

    let mut group = c.benchmark_group("table4_filescan");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (qname, request) in [("keyword", &keyword), ("regex", &regex)] {
        for (label, approach) in [
            ("MAP", Approach::Map),
            ("kMAP25", Approach::KMap),
            ("STACCATO_m40_k25", Approach::Staccato),
            ("FullSFA", Approach::FullSfa),
        ] {
            let request = request.clone().approach(approach);
            group.bench_function(format!("{label}/{qname}"), |b| {
                b.iter(|| black_box(session.execute(&request).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_approaches);
criterion_main!(benches);
