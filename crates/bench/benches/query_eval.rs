//! Criterion bench for Table 4's runtime columns: one filescan per
//! representation over the same corpus slice.
//!
//! Expected shape (paper §5.1): MAP ≪ k-MAP ≪ STACCATO ≪ FullSFA, with
//! FullSFA 2–3 orders of magnitude above MAP.

use criterion::{criterion_group, criterion_main, Criterion};
use staccato_bench::mem::MemCorpus;
use staccato_ocr::{ChannelConfig, CorpusKind};
use staccato_query::Query;
use std::hint::black_box;
use std::time::Duration;

fn bench_approaches(c: &mut Criterion) {
    let mut corpus = MemCorpus::build(
        CorpusKind::CongressActs,
        120,
        42,
        ChannelConfig { seed: 42, ..ChannelConfig::default() },
    );
    // Warm every representation outside the timers.
    let _ = corpus.kmap(1);
    let _ = corpus.kmap(25);
    let _ = corpus.staccato(40, 25);
    let keyword = Query::keyword("President").expect("pattern");
    let regex = Query::regex(r"U.S.C. 2\d\d\d").expect("pattern");

    let mut group = c.benchmark_group("table4_filescan");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (qname, query) in [("keyword", &keyword), ("regex", &regex)] {
        group.bench_function(format!("MAP/{qname}"), |b| {
            b.iter(|| black_box(corpus.eval_map(query, 100)))
        });
        group.bench_function(format!("kMAP25/{qname}"), |b| {
            b.iter(|| black_box(corpus.eval_kmap(25, query, 100)))
        });
        group.bench_function(format!("STACCATO_m40_k25/{qname}"), |b| {
            b.iter(|| black_box(corpus.eval_staccato(40, 25, query, 100)))
        });
        group.bench_function(format!("FullSFA/{qname}"), |b| {
            b.iter(|| black_box(corpus.eval_full(query, 100)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_approaches);
criterion_main!(benches);
