//! Criterion bench for Figure 9: index-assisted execution vs filescan on
//! an anchored regular expression, through the real storage engine.

use criterion::{criterion_group, criterion_main, Criterion};
use staccato_automata::Trie;
use staccato_bench::workload::corpus_dictionary;
use staccato_core::StaccatoParams;
use staccato_ocr::{generate, ChannelConfig, CorpusKind};
use staccato_query::exec::{filescan_query, Approach};
use staccato_query::invindex::{build_index, indexed_query, line_postings};
use staccato_query::store::{LoadOptions, OcrStore};
use staccato_query::Query;
use staccato_sfa::codec;
use staccato_storage::Database;
use std::hint::black_box;
use std::time::Duration;

fn bench_index(c: &mut Criterion) {
    let dataset = generate(CorpusKind::CongressActs, 150, 42);
    let db = Database::in_memory(8192).unwrap();
    let opts = LoadOptions {
        channel: ChannelConfig { seed: 42, ..ChannelConfig::default() },
        kmap_k: 25,
        staccato: StaccatoParams::new(40, 25),
        ..Default::default()
    };
    let store = OcrStore::load(db, &dataset, &opts).unwrap();
    let dict = corpus_dictionary(&dataset, 1000);
    let trie = Trie::build(&dict);
    let index = build_index(&store, &trie, "inv").unwrap();
    let query = Query::regex(r"Public Law (8|9)\d").unwrap();

    let mut group = c.benchmark_group("fig9_index");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("filescan", |b| {
        b.iter(|| black_box(filescan_query(&store, Approach::Staccato, &query, 100).unwrap()))
    });
    group.bench_function("index_probe", |b| {
        b.iter(|| black_box(indexed_query(&store, &index, &query, 100).unwrap()))
    });
    // Per-line posting extraction (Algorithms 3–4), the construction unit.
    let graph = store.get_staccato_graph(0).unwrap();
    let blob = codec::encode(&graph);
    group.bench_function("line_postings_one_graph", |b| {
        b.iter(|| {
            let g = codec::decode(&blob).unwrap();
            black_box(line_postings(&trie, &g))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
