//! Criterion bench for Figure 9: index-assisted execution vs filescan on
//! an anchored regular expression, through the real storage engine and
//! the session API.

use criterion::{criterion_group, criterion_main, Criterion};
use staccato_automata::Trie;
use staccato_bench::workload::corpus_dictionary;
use staccato_core::StaccatoParams;
use staccato_ocr::{generate, ChannelConfig, CorpusKind};
use staccato_query::invindex::line_postings;
use staccato_query::store::LoadOptions;
use staccato_query::{PlanPreference, QueryRequest, Staccato};
use staccato_sfa::codec;
use staccato_storage::Database;
use std::hint::black_box;
use std::time::Duration;

fn bench_index(c: &mut Criterion) {
    let dataset = generate(CorpusKind::CongressActs, 150, 42);
    let db = Database::in_memory(8192).unwrap();
    let opts = LoadOptions {
        channel: ChannelConfig {
            seed: 42,
            ..ChannelConfig::default()
        },
        kmap_k: 25,
        staccato: StaccatoParams::new(40, 25),
        ..Default::default()
    };
    let session = Staccato::load(db, &dataset, &opts).unwrap();
    let dict = corpus_dictionary(&dataset, 1000);
    let trie = Trie::build(&dict);
    session.register_index(&trie, "inv").unwrap();
    let request = QueryRequest::regex(r"Public Law (8|9)\d").num_ans(100);
    let filescan = request
        .clone()
        .plan_preference(PlanPreference::ForceFileScan);
    assert!(session.plan(&request).unwrap().is_index_probe());

    let mut group = c.benchmark_group("fig9_index");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("filescan", |b| {
        b.iter(|| black_box(session.execute(&filescan).unwrap()))
    });
    group.bench_function("index_probe", |b| {
        b.iter(|| black_box(session.execute(&request).unwrap()))
    });
    // Per-line posting extraction (Algorithms 3–4), the construction unit.
    let graph = session.store().get_staccato_graph(0).unwrap();
    let blob = codec::encode(&graph);
    group.bench_function("line_postings_one_graph", |b| {
        b.iter(|| {
            let g = codec::decode(&blob).unwrap();
            black_box(line_postings(&trie, &g))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
