//! # staccato
//!
//! Facade crate for the Staccato reproduction: *Probabilistic Management of
//! OCR Data using an RDBMS* (Kumar & Ré, VLDB 2011).
//!
//! Staccato keeps the probabilistic model produced by OCR — a stochastic
//! finite automaton (SFA) per scanned line — inside a relational database
//! and lets SQL `LIKE` / regex predicates run directly over it, trading
//! recall for query performance through a chunk-based approximation.
//!
//! Each subsystem lives in its own crate and is re-exported here:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sfa`] | `staccato-sfa` | SFA model, Viterbi/k-best/mass inference, blob codec |
//! | [`automata`] | `staccato-automata` | regex & LIKE → DFA compiler, dictionary trie |
//! | [`approx`] | `staccato-core` | FindMinSFA, Collapse, greedy chunking, parameter tuning |
//! | [`ocr`] | `staccato-ocr` | OCR channel simulator and the CA/LT/DB corpus generators |
//! | [`storage`] | `staccato-storage` | pages, buffer pool, heap files, B+-tree, blob store, catalog |
//! | [`query`] | `staccato-query` | representation stores, filescan/index executors, metrics |
//! | [`server`] | `staccato-server` | HTTP/1.1 service tier: SQL over the wire, rate limiting, stats |
//!
//! Querying goes through the [`Staccato`] session API: open (or load) a
//! store, optionally register a §4 inverted index, and run queries —
//! either as SQL text (`Staccato::sql` / `Staccato::prepare`, the
//! paper's §2.3 interface) or as fluent [`QueryRequest`]s. Both lower to
//! one planner, which picks the access path (filescan vs. index probe,
//! optionally wrapped in a streaming aggregate) and reports the plan and
//! [`ExecStats`] with every result.
//!
//! ```ignore
//! use staccato::{QueryRequest, SqlValue, Staccato};
//! let session = Staccato::load(db, &dataset, &opts)?;
//! let out = session.sql(
//!     "SELECT DataKey, Prob FROM StaccatoData WHERE Data LIKE '%Ford%' LIMIT 100",
//! )?;
//! let same = session.execute(&QueryRequest::like("%Ford%").num_ans(100))?;
//! ```
//!
//! See `examples/quickstart.rs` and `examples/sql_console.rs` for an
//! end-to-end tour and DESIGN.md for the experiment map.

pub use staccato_automata as automata;
pub use staccato_core as approx;
pub use staccato_ocr as ocr;
pub use staccato_query as query;
pub use staccato_server as server;
pub use staccato_sfa as sfa;
pub use staccato_storage as storage;

pub use staccato_query::{
    AggregateFunc, AggregateResult, Answer, Approach, CheckpointPolicy, DocumentInput, ExecStats,
    HistoryRow, IngestBatch, IngestReceipt, IngestStats, Plan, PlanPreference, PreparedQuery,
    QueryOutput, QueryRequest, SqlTable, SqlValue, Staccato,
};
pub use staccato_storage::{SyncPolicy, WalStats};
