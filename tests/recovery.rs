//! Crash recovery: the WAL-backed write path must survive a process
//! death between checkpoints.
//!
//! The contract under test (DESIGN.md, "Write path & recovery"): after a
//! crash, `Staccato::recover` replays the WAL over the last checkpoint
//! and produces a store that is indistinguishable — answers,
//! probabilities, sizes, history — from one that never crashed, holding
//! exactly the batches whose WAL records were fully on disk. A torn tail
//! (the record the crash interrupted) is truncated, not replayed.

use staccato::approx::StaccatoParams;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::store::LoadOptions;
use staccato::query::RecoverOptions;
use staccato::storage::Database;
use staccato::{Answer, DocumentInput, HistoryRow, IngestBatch, Staccato, SyncPolicy};
use std::path::{Path, PathBuf};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("staccato_rec_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn load_options(seed: u64) -> LoadOptions {
    LoadOptions {
        channel: ChannelConfig::compact(seed),
        kmap_k: 4,
        staccato: StaccatoParams::new(8, 6),
        parallelism: 1,
    }
}

/// Everything a reader can observe about the store's committed state.
#[derive(Debug, PartialEq)]
struct Snapshot {
    lines: usize,
    answers: Vec<Answer>,
    count: f64,
    history: Vec<HistoryRow>,
}

fn snapshot(session: &Staccato) -> Snapshot {
    let answers = session
        .sql("SELECT DataKey, Prob FROM StaccatoData WHERE Data LIKE '%e%' LIMIT 10000")
        .expect("select")
        .answers;
    let count = session
        .sql("SELECT COUNT(*) FROM MAPData WHERE Data LIKE '%a%'")
        .expect("count")
        .aggregate
        .expect("aggregate")
        .value;
    let history = session
        .sql("SELECT * FROM StaccatoHistory")
        .expect("history")
        .history
        .expect("rows");
    Snapshot {
        lines: session.line_count(),
        answers,
        count,
        history,
    }
}

fn batch(n: u64) -> IngestBatch {
    IngestBatch::new()
        .doc(DocumentInput::new(
            format!("scan-{n}-a.png"),
            format!("the Senate considered Public Law {n} this session"),
        ))
        .doc(DocumentInput::new(
            format!("scan-{n}-b.png"),
            format!("amendment {n} to the employment act of the Congress"),
        ))
}

/// Chop `bytes` off the end of the newest WAL segment — the on-disk
/// shape a crash leaves when it lands mid-append.
fn tear_wal_tail(wal_dir: &Path, bytes: u64) {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(wal_dir)
        .expect("wal dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segments.sort();
    let last = segments.last().expect("at least one segment");
    let len = std::fs::metadata(last).expect("metadata").len();
    assert!(len > bytes, "segment too small to tear");
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(last)
        .expect("open");
    file.set_len(len - bytes).expect("truncate");
}

/// The acceptance scenario: load + checkpoint, ingest three batches, a
/// fourth batch's WAL record torn mid-write by the "crash", reopen.
/// Recovery must restore exactly the three whole batches, byte-identical
/// to what a reader saw before the crash.
#[test]
fn torn_tail_recovery_restores_exactly_the_committed_batches() {
    let dir = TempDir::new("torn");
    let db_path = dir.path().join("store.db");
    let wal_dir = dir.path().join("wal");
    let opts = load_options(5);

    let expected;
    {
        let dataset = generate(CorpusKind::CongressActs, 12, 5);
        let db = Database::create(&db_path, 2048).expect("create");
        let session = Staccato::load(db, &dataset, &opts).expect("load");
        session.checkpoint().expect("checkpoint after load");
        session
            .attach_wal(&wal_dir, SyncPolicy::Commit)
            .expect("attach");

        for n in 1..=3u64 {
            let receipt = session.ingest(batch(n)).expect("ingest");
            assert_eq!(receipt.batch_seq, n);
            assert_eq!(receipt.first_key, 12 + 2 * (n as i64 - 1));
            assert!(receipt.wal_bytes > 0, "WAL attached, batches must log");
        }
        expected = snapshot(&session);
        assert_eq!(expected.lines, 18);
        assert_eq!(expected.history.len(), 6);

        // The in-flight batch the crash will tear.
        session.ingest(batch(4)).expect("fourth batch");
        // Crash: drop without a checkpoint. The database file still holds
        // only the post-load state; every batch lives in the WAL.
    }
    tear_wal_tail(&wal_dir, 3);

    let recovered = Staccato::recover_with(
        &db_path,
        &wal_dir,
        &RecoverOptions {
            pool_frames: 2048,
            load: opts.clone(),
            sync: SyncPolicy::Commit,
        },
    )
    .expect("recover");

    // Byte-identical to the pre-crash committed state: same keys, same
    // probabilities, same history rows (timestamps included — replay
    // restores them from the log, it does not re-stamp).
    assert_eq!(snapshot(&recovered), expected);
    let stats = recovered.ingest_stats();
    assert_eq!(stats.replays, 3, "three whole batches replayed");

    // The session is live for further durable writes, numbered after the
    // last complete batch.
    let receipt = recovered.ingest(batch(5)).expect("post-recovery ingest");
    assert_eq!(receipt.batch_seq, 4, "torn batch's sequence is reusable");
    assert_eq!(receipt.first_key, 18);
    assert_eq!(recovered.line_count(), 20);
}

/// A recovered store must be indistinguishable from one that never
/// crashed at all — not just self-consistent.
#[test]
fn recovered_store_matches_a_never_crashed_store() {
    let never = TempDir::new("never");
    let crashed = TempDir::new("crashed");
    let opts = load_options(9);
    let dataset = generate(CorpusKind::DbPapers, 10, 9);

    let build = |dir: &Path| {
        let db = Database::create(dir.join("store.db"), 2048).expect("create");
        let session = Staccato::load(db, &dataset, &opts).expect("load");
        session.checkpoint().expect("checkpoint");
        session
            .attach_wal(&dir.join("wal"), SyncPolicy::Commit)
            .expect("attach");
        for n in 1..=2u64 {
            session.ingest(batch(n)).expect("ingest");
        }
        session
    };

    let reference = build(never.path());
    drop(build(crashed.path())); // crash: no checkpoint since load
    let recovered = Staccato::recover_with(
        &crashed.path().join("store.db"),
        &crashed.path().join("wal"),
        &RecoverOptions {
            pool_frames: 2048,
            load: opts.clone(),
            sync: SyncPolicy::Commit,
        },
    )
    .expect("recover");

    let a = snapshot(&reference);
    let b = snapshot(&recovered);
    // Timestamps may differ across the two stores (they were stamped at
    // different wall times); everything else must agree exactly.
    assert_eq!(a.lines, b.lines);
    assert_eq!(a.answers, b.answers);
    assert_eq!(a.count, b.count);
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.data_key, y.data_key);
        assert_eq!(x.file_name, y.file_name);
        assert_eq!(x.provider, y.provider);
        assert_eq!(x.batch_seq, y.batch_seq);
    }
}

/// Satellite pin: `line_count()`, `sizes()`, and SQL visibility must
/// reflect an ingested batch immediately — no refresh, reopen, or
/// checkpoint in between.
#[test]
fn ingest_is_immediately_visible_without_checkpoint() {
    let dir = TempDir::new("fresh");
    let opts = load_options(3);
    let dataset = generate(CorpusKind::EnglishLit, 6, 3);
    let db = Database::create(dir.path().join("store.db"), 1024).expect("create");
    let session = Staccato::load(db, &dataset, &opts).expect("load");
    session
        .attach_wal(&dir.path().join("wal"), SyncPolicy::Commit)
        .expect("attach");

    let before_sizes = session.sizes();
    assert_eq!(session.line_count(), 6);
    session
        .ingest(IngestBatch::new().doc(DocumentInput::new(
            "fresh.png",
            "an unmistakably fresh xylophone sentence",
        )))
        .expect("ingest");
    assert_eq!(session.line_count(), 7, "count visible immediately");
    let after_sizes = session.sizes();
    assert!(after_sizes.text > before_sizes.text);
    assert!(after_sizes.map > before_sizes.map);
    assert!(after_sizes.staccato > before_sizes.staccato);
    let out = session
        .sql("SELECT DataKey FROM MAPData WHERE Data LIKE '%xylophone%' LIMIT 10")
        .expect("select");
    assert_eq!(out.answers.len(), 1, "row visible immediately");
    assert_eq!(out.answers[0].data_key, 6);
    let history = session
        .sql("SELECT * FROM StaccatoHistory WHERE FileName LIKE 'fresh%'")
        .expect("history")
        .history
        .expect("rows");
    assert_eq!(history.len(), 1);
}

/// The background checkpointer: a batch-count policy rings the doorbell
/// from the write path, the dedicated thread snapshots and GCs sealed
/// WAL segments while ingest keeps going, and a crash afterwards
/// recovers exactly — replaying only what the last checkpoint missed.
#[test]
fn background_checkpointer_snapshots_and_gcs_segments_off_the_write_path() {
    use staccato::CheckpointPolicy;
    use std::sync::Arc;

    const BATCHES: u64 = 6;

    let dir = TempDir::new("bgckpt");
    let db_path = dir.path().join("store.db");
    let wal_dir = dir.path().join("wal");
    let opts = load_options(7);
    let dataset = generate(CorpusKind::CongressActs, 8, 7);

    let expected;
    {
        let db = Database::create(&db_path, 2048).expect("create");
        let session = Arc::new(Staccato::load(db, &dataset, &opts).expect("load"));
        session.checkpoint().expect("checkpoint after load");
        session
            .attach_wal(&wal_dir, SyncPolicy::Commit)
            .expect("attach");
        Staccato::start_background_checkpoints(&session, CheckpointPolicy::every_batches(2))
            .expect("start checkpointer");

        for n in 1..=BATCHES {
            session.ingest(batch(n)).expect("ingest");
        }
        // The write path never blocks on a snapshot — it only rings a
        // doorbell — so give the checkpointer a moment to drain.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let stats = session.ingest_stats();
            if stats.background_checkpoints >= 2 && stats.wal_segments_deleted >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "checkpointer never caught up: {stats:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let stats = session.ingest_stats();
        assert!(
            stats.checkpoints >= stats.background_checkpoints,
            "background runs are counted as checkpoints too: {stats:?}"
        );
        // GC must never delete the live segment: the log stays openable
        // and holds a consistent (possibly empty) suffix of batches.
        expected = snapshot(&session);
        assert_eq!(expected.lines, 8 + 2 * BATCHES as usize);
        // Crash without a manual checkpoint.
    }

    let recovered = Staccato::recover_with(
        &db_path,
        &wal_dir,
        &RecoverOptions {
            pool_frames: 2048,
            load: opts.clone(),
            sync: SyncPolicy::Commit,
        },
    )
    .expect("recover after background checkpoints");
    // Byte-identical state, and the replay covers only the batches the
    // last background snapshot had not yet persisted.
    assert_eq!(snapshot(&recovered), expected);
    assert!(
        recovered.ingest_stats().replays < BATCHES,
        "a checkpoint ran, so some prefix must not need replay: {:?}",
        recovered.ingest_stats()
    );
}

/// The byte-threshold trigger: a policy of "checkpoint every N WAL
/// bytes" with tiny N checkpoints on (nearly) every batch, and segment
/// GC keeps the directory from accumulating sealed segments.
#[test]
fn byte_threshold_policy_checkpoints_and_bounds_the_wal_directory() {
    use staccato::CheckpointPolicy;
    use std::sync::Arc;

    let dir = TempDir::new("bytepolicy");
    let opts = load_options(11);
    let dataset = generate(CorpusKind::DbPapers, 6, 11);
    let db = Database::create(dir.path().join("store.db"), 2048).expect("create");
    let session = Arc::new(Staccato::load(db, &dataset, &opts).expect("load"));
    session.checkpoint().expect("checkpoint");
    session
        .attach_wal(&dir.path().join("wal"), SyncPolicy::Commit)
        .expect("attach");
    // Every batch logs far more than 1 byte, so each one is due.
    Staccato::start_background_checkpoints(&session, CheckpointPolicy::every_bytes(1))
        .expect("start checkpointer");

    for n in 1..=4u64 {
        session.ingest(batch(n)).expect("ingest");
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let stats = session.ingest_stats();
        if stats.background_checkpoints >= 1 && stats.wal_segments_deleted >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "byte policy never triggered: {stats:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    // Sealed segments are deleted as they are covered: at most the live
    // segment plus one in-flight seal survive on disk.
    let segments = std::fs::read_dir(dir.path().join("wal"))
        .expect("wal dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .count();
    assert!(
        segments <= 2,
        "GC must bound the directory, found {segments}"
    );
    // The session stays fully usable after many background snapshots.
    let keys = session
        .sql("SELECT DataKey FROM MAPData WHERE Data LIKE '%amendment%' LIMIT 100")
        .expect("select")
        .answers;
    assert!(!keys.is_empty());
}
