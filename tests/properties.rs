//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use proptest::prelude::*;
use staccato::approx::{approximate, StaccatoParams};
use staccato::automata::{parse, Dfa, Nfa};
use staccato::query::{eval_sfa, Query};
use staccato::sfa::{
    check_structure, check_unique_paths, codec, string_probability, total_mass, Emission, Sfa,
    SfaBuilder,
};
use std::collections::HashSet;

/// Strategy: a small random SFA shaped like OCR output — a chain with
/// occasional two-branch bubbles, distinct characters per position so the
/// unique path property holds by construction.
fn sfa_strategy() -> impl Strategy<Value = Sfa> {
    let position =
        prop::collection::vec((prop::sample::select([2usize, 3, 4]), any::<u32>()), 2..8);
    (position, any::<bool>()).prop_map(|(positions, bubble)| {
        let mut b = SfaBuilder::new();
        let start = b.add_node();
        let mut cur = start;
        let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789".chars().collect();
        for (i, (fanout, salt)) in positions.iter().enumerate() {
            let next = b.add_node();
            // Distinct chars for this position derived from the salt.
            let mut chars: Vec<char> = (0..*fanout)
                .map(|j| alphabet[((salt >> (j * 5)) as usize + j * 7 + i) % alphabet.len()])
                .collect();
            chars.sort_unstable();
            chars.dedup();
            let n = chars.len();
            let emissions: Vec<Emission> = chars
                .into_iter()
                .enumerate()
                .map(|(j, c)| {
                    let p = (j + 1) as f64 / (n * (n + 1) / 2) as f64;
                    Emission::new(c.to_string(), p)
                })
                .collect();
            if bubble && i == 1 && emissions.len() >= 2 {
                // Split this position into two parallel branches with
                // disjoint supports (keeps unique paths).
                let (left, right) = emissions.split_at(1);
                let mid = b.add_node();
                b.add_edge(cur, mid, left.to_vec());
                b.add_edge(mid, next, vec![Emission::new("_", 1.0)]);
                b.add_edge(cur, next, right.to_vec());
            } else {
                b.add_edge(cur, next, emissions);
            }
            cur = next;
        }
        b.build(start, cur).expect("generated SFA is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_sfas_satisfy_invariants(sfa in sfa_strategy()) {
        check_structure(&sfa).unwrap();
        check_unique_paths(&sfa).unwrap();
        let mass = total_mass(&sfa);
        prop_assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    fn codec_roundtrips_any_sfa(sfa in sfa_strategy()) {
        let back = codec::decode(&codec::encode(&sfa)).unwrap();
        let mut a = sfa.enumerate_strings(100_000);
        let mut b = back.enumerate_strings(100_000);
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        prop_assert_eq!(a.len(), b.len());
        for ((sa, pa), (sb, pb)) in a.iter().zip(&b) {
            prop_assert_eq!(sa, sb);
            prop_assert!((pa - pb).abs() < 1e-12);
        }
    }

    #[test]
    fn approximation_never_invents_strings_and_never_gains_mass(
        sfa in sfa_strategy(),
        m in 1usize..6,
        k in 1usize..5,
    ) {
        let approx = approximate(&sfa, StaccatoParams::new(m, k));
        check_structure(&approx).unwrap();
        check_unique_paths(&approx).unwrap();
        prop_assert!(approx.edge_count() <= m.max(1) || approx.edge_count() <= sfa.edge_count());
        let original: HashSet<String> =
            sfa.enumerate_strings(100_000).into_iter().map(|(s, _)| s).collect();
        for (s, p) in approx.enumerate_strings(100_000) {
            prop_assert!(original.contains(&s), "invented string {s:?}");
            let p0 = string_probability(&sfa, &s);
            prop_assert!((p - p0).abs() < 1e-9, "probability changed for {s:?}: {p} vs {p0}");
        }
        prop_assert!(total_mass(&approx) <= 1.0 + 1e-9);
    }

    #[test]
    fn staccato_mass_monotone_in_k(sfa in sfa_strategy(), m in 1usize..5) {
        let m1 = total_mass(&approximate(&sfa, StaccatoParams::new(m, 1)));
        let m2 = total_mass(&approximate(&sfa, StaccatoParams::new(m, 2)));
        let m4 = total_mass(&approximate(&sfa, StaccatoParams::new(m, 4)));
        prop_assert!(m1 <= m2 + 1e-12);
        prop_assert!(m2 <= m4 + 1e-12);
    }

    #[test]
    fn eval_sfa_equals_enumeration(sfa in sfa_strategy(), needle in "[a-z0-9]{1,3}") {
        let query = Query::keyword(&needle).unwrap();
        let brute: f64 = sfa
            .enumerate_strings(100_000)
            .into_iter()
            .filter(|(s, _)| s.contains(&needle))
            .map(|(_, p)| p)
            .sum();
        let dp = eval_sfa(&query.dfa, &sfa);
        prop_assert!((dp - brute).abs() < 1e-9, "dp {dp} vs brute {brute}");
    }

    #[test]
    fn string_probability_equals_enumeration(sfa in sfa_strategy()) {
        for (s, p) in sfa.enumerate_strings(64) {
            let dp = string_probability(&sfa, &s);
            prop_assert!((dp - p).abs() < 1e-9);
        }
    }
}

/// Strategy: a random pattern in the supported dialect, built from an AST
/// so it is always syntactically valid.
fn pattern_strategy() -> impl Strategy<Value = String> {
    let leaf = prop::sample::select(vec![
        "a".to_string(),
        "b".to_string(),
        "c".to_string(),
        r"\d".to_string(),
        "[ab]".to_string(),
    ]);
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}{b}")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}|{b})")),
            inner.clone().prop_map(|a| format!("({a})*")),
            inner.clone().prop_map(|a| format!("({a})?")),
            inner.prop_map(|a| format!("({a})+")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dfa_equals_nfa_reference(pattern in pattern_strategy(), input in "[abc0-9]{0,8}") {
        let ast = parse(&pattern).unwrap();
        let nfa = Nfa::compile(&ast);
        let dfa = Dfa::compile(&ast);
        prop_assert_eq!(
            dfa.accepts(&input),
            nfa.accepts(&input),
            "pattern {} on {:?}", pattern, input
        );
    }

    #[test]
    fn containment_dfa_matches_substring_semantics(
        pattern in "[abc]{1,4}",
        input in "[abc]{0,10}",
    ) {
        let q = Query::keyword(&pattern).unwrap();
        prop_assert_eq!(
            q.dfa.is_accept(q.dfa.run_from(q.dfa.start(), &input)),
            input.contains(&pattern)
        );
    }
}

/// B+-tree behaves like a sorted map under arbitrary operation sequences.
mod btree_model {
    use proptest::prelude::*;
    use staccato::storage::{BTree, BufferPool, MemDisk};
    use std::collections::BTreeMap;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>, u64),
        Delete(Vec<u8>),
        Get(Vec<u8>),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        let key = prop::collection::vec(0u8..8, 1..5);
        prop_oneof![
            (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            key.clone().prop_map(Op::Delete),
            key.prop_map(Op::Get),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..120)) {
            let pool = BufferPool::new(Box::new(MemDisk::new()), 64);
            let tree = BTree::create(&pool).unwrap();
            let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(tree.insert(&pool, &k, v).unwrap(), model.insert(k, v));
                    }
                    Op::Delete(k) => {
                        prop_assert_eq!(tree.delete(&pool, &k).unwrap(), model.remove(&k).is_some());
                    }
                    Op::Get(k) => {
                        prop_assert_eq!(tree.get(&pool, &k).unwrap(), model.get(&k).copied());
                    }
                }
            }
            let ours = tree.scan_range(&pool, &[], None).unwrap();
            let theirs: Vec<(Vec<u8>, u64)> = model.into_iter().collect();
            prop_assert_eq!(ours, theirs);
        }
    }
}
