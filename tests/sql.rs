//! The SQL front-end, end to end: grammar round-trips, equivalence with
//! the builder path, `EXPLAIN` agreement, thresholds, aggregates, and
//! prepared statements — all over a real loaded store.

use proptest::prelude::*;
use staccato::approx::StaccatoParams;
use staccato::automata::Trie;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::sql::{
    parse_statement, render_statement, HistorySelect, Insert, InsertRow, Predicate, Projection,
    Select, SqlArg, Statement,
};
use staccato::query::store::LoadOptions;
use staccato::query::Dialect;
use staccato::storage::Database;
use staccato::{AggregateFunc, Approach, Plan, QueryRequest, SqlTable, SqlValue, Staccato};

fn session(lines: usize, seed: u64) -> Staccato {
    let dataset = generate(CorpusKind::CongressActs, lines, seed);
    let db = Database::in_memory(2048).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(seed),
        kmap_k: 8,
        staccato: StaccatoParams::new(10, 8),
        parallelism: 2,
    };
    Staccato::load(db, &dataset, &opts).expect("load")
}

// ------------------------------------------------------------------------
// Grammar: parse ∘ render is the identity on every representable AST.

/// Strategy over the whole AST space, with `?` ordinals assigned the way
/// the parser does (left to right), so equality is exact.
fn statement_strategy() -> impl Strategy<Value = Statement> {
    let head = (
        0usize..5,              // projection
        0usize..4,              // table
        any::<bool>(),          // dialect: LIKE / REGEXP
        "[a-z0-9%'() .|]{0,8}", // pattern text (quotes exercise escaping)
    );
    let threshold = (
        any::<bool>(), // AND Prob >= present?
        any::<bool>(), // ...as a '?'
        0usize..1001,  // threshold in milli-units -> [0, 1]
        any::<bool>(), // ORDER BY Prob DESC present?
    );
    let tail = (
        any::<bool>(), // LIMIT present?
        any::<bool>(), // ...as a '?'
        0u64..10_000,  // limit value
        0usize..3,     // plain / EXPLAIN / EXPLAIN ANALYZE
    );
    let paging = (
        any::<bool>(), // OFFSET present? (grammar requires LIMIT first)
        any::<bool>(), // ...as a '?'
        0u64..10_000,  // offset value
    );
    ((head, any::<bool>()), threshold, tail, paging).prop_map(
        |(
            ((proj, table, like, pattern), pattern_param),
            (has_t, t_param, t_milli, order_by_prob),
            (has_limit, limit_param, limit, explain),
            (has_offset, offset_param, offset),
        )| {
            let mut next_param = 0u32;
            let mut param = || {
                let n = next_param;
                next_param += 1;
                n
            };
            let pattern = if pattern_param {
                SqlArg::Param(param())
            } else {
                SqlArg::Value(pattern)
            };
            let min_prob = if has_t {
                Some(if t_param {
                    SqlArg::Param(param())
                } else {
                    SqlArg::Value(t_milli as f64 / 1000.0)
                })
            } else {
                None
            };
            let limit = if has_limit {
                Some(if limit_param {
                    SqlArg::Param(param())
                } else {
                    SqlArg::Value(limit)
                })
            } else {
                None
            };
            let offset = if has_limit && has_offset {
                Some(if offset_param {
                    SqlArg::Param(param())
                } else {
                    SqlArg::Value(offset)
                })
            } else {
                None
            };
            let select = Select {
                projection: match proj {
                    0 => Projection::DataKey,
                    1 => Projection::DataKeyProb,
                    2 => Projection::Aggregate(AggregateFunc::CountStar),
                    3 => Projection::Aggregate(AggregateFunc::SumProb),
                    _ => Projection::Aggregate(AggregateFunc::AvgProb),
                },
                table: match table {
                    0 => SqlTable::Map,
                    1 => SqlTable::KMap,
                    2 => SqlTable::FullSfa,
                    _ => SqlTable::Staccato,
                },
                predicate: Predicate {
                    dialect: if like { Dialect::Like } else { Dialect::Regex },
                    pattern,
                    min_prob,
                },
                order_by_prob,
                limit,
                offset,
            };
            match explain {
                1 => Statement::Explain(select),
                2 => Statement::ExplainAnalyze(select),
                _ => Statement::Select(select),
            }
        },
    )
}

/// Strategy over the write-path statements: multi-row `INSERT`s and
/// `StaccatoHistory` scans, with `?` ordinals assigned left to right.
fn write_statement_strategy() -> impl Strategy<Value = Statement> {
    let text = "[a-z0-9%'() .|]{0,8}";
    let insert =
        prop::collection::vec((text, any::<bool>(), text, any::<bool>()), 1..4).prop_map(|rows| {
            let mut next_param = 0u32;
            let mut param = || {
                let n = next_param;
                next_param += 1;
                n
            };
            Statement::Insert(Insert {
                rows: rows
                    .into_iter()
                    .map(|(name, name_param, data, data_param)| InsertRow {
                        doc_name: if name_param {
                            SqlArg::Param(param())
                        } else {
                            SqlArg::Value(name)
                        },
                        data: if data_param {
                            SqlArg::Param(param())
                        } else {
                            SqlArg::Value(data)
                        },
                    })
                    .collect(),
            })
        });
    let history = (
        (any::<bool>(), any::<bool>(), text),
        (any::<bool>(), any::<bool>(), 0u64..10_000),
    )
        .prop_map(
            |((has_like, like_param, pattern), (has_limit, limit_param, limit))| {
                let mut next_param = 0u32;
                let mut param = || {
                    let n = next_param;
                    next_param += 1;
                    n
                };
                Statement::SelectHistory(HistorySelect {
                    file_like: if has_like {
                        Some(if like_param {
                            SqlArg::Param(param())
                        } else {
                            SqlArg::Value(pattern)
                        })
                    } else {
                        None
                    },
                    limit: if has_limit {
                        Some(if limit_param {
                            SqlArg::Param(param())
                        } else {
                            SqlArg::Value(limit)
                        })
                    } else {
                        None
                    },
                })
            },
        );
    prop_oneof![insert, history]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_render_round_trips(stmt in statement_strategy()) {
        let text = render_statement(&stmt);
        let back = parse_statement(&text)
            .unwrap_or_else(|e| panic!("rendered SQL must parse: {text:?}: {e}"));
        prop_assert_eq!(&back, &stmt, "{}", text);
        // Rendering is canonical: a second trip is byte-identical.
        prop_assert_eq!(render_statement(&back), text);
    }

    #[test]
    fn write_statements_round_trip(stmt in write_statement_strategy()) {
        let text = render_statement(&stmt);
        let back = parse_statement(&text)
            .unwrap_or_else(|e| panic!("rendered SQL must parse: {text:?}: {e}"));
        prop_assert_eq!(&back, &stmt, "{}", text);
        prop_assert_eq!(render_statement(&back), text);
    }
}

// ------------------------------------------------------------------------
// Execution: the SQL surface and the builder surface are one engine.

#[test]
fn sql_and_builder_agree_on_every_representation() {
    let s = session(40, 101);
    for approach in Approach::all() {
        let table = SqlTable::of_approach(approach).name();
        let sql = format!(
            "SELECT DataKey, Prob FROM {table} WHERE Data REGEXP 'President' \
             ORDER BY Prob DESC LIMIT 1000"
        );
        let via_sql = s.sql(&sql).expect("sql path");
        let via_builder = s
            .execute(
                &QueryRequest::keyword("President")
                    .approach(approach)
                    .num_ans(1000),
            )
            .expect("builder path");
        assert_eq!(via_sql.plan, via_builder.plan, "{table}");
        assert_eq!(via_sql.answers.len(), via_builder.answers.len(), "{table}");
        for (a, b) in via_sql.answers.iter().zip(&via_builder.answers) {
            assert_eq!(a.data_key, b.data_key);
            assert_eq!(a.probability, b.probability);
        }
    }
}

#[test]
fn explain_select_agrees_with_builder_explain() {
    // The acceptance contract: `EXPLAIN SELECT ...` output equals the
    // builder-path `explain()` for the same query — filescan and probe.
    let s = session(50, 103);
    let cases = [
        (
            "EXPLAIN SELECT DataKey FROM StaccatoData WHERE Data REGEXP 'Public Law (8|9)\\d' LIMIT 100",
            QueryRequest::regex(r"Public Law (8|9)\d"),
        ),
        (
            "EXPLAIN SELECT DataKey, Prob FROM MAPData WHERE Data LIKE '%Ford%' AND Prob >= 0.5 LIMIT 10",
            QueryRequest::like("%Ford%")
                .approach(Approach::Map)
                .min_prob(0.5)
                .num_ans(10),
        ),
    ];
    for register_index in [false, true] {
        if register_index {
            s.register_index(&Trie::build(["public"]), "inv")
                .expect("index");
        }
        for (sql, request) in &cases {
            let via_sql = s.sql(sql).expect("EXPLAIN").explain.expect("text");
            let via_builder = s.explain(request).expect("builder explain");
            assert_eq!(via_sql, via_builder, "{sql}");
        }
    }
    // With the index registered the anchored query's EXPLAIN shows the probe.
    let text = s.sql(cases[0].0).unwrap().explain.unwrap();
    assert!(text.contains("IndexProbe"), "{text}");
}

#[test]
fn explain_analyze_executes_and_reports_counters() {
    let s = session(30, 131);
    let sql = "SELECT DataKey, Prob FROM MAPData WHERE Data REGEXP 'President' LIMIT 10";
    let out = s.sql(&format!("EXPLAIN ANALYZE {sql}")).expect("analyze");
    let text = out.explain.expect("EXPLAIN ANALYZE sets the text");
    // It executed for real: answers and counters are populated.
    assert!(!out.answers.is_empty());
    assert_eq!(out.stats.rows_scanned as usize, s.line_count());
    assert!(out.stats.exec_wall.as_nanos() > 0, "execution is timed");
    assert!(
        out.stats.pool.hits + out.stats.pool.misses > 0,
        "the scan reads pages through the pool: {:?}",
        out.stats.pool
    );
    // The report is the EXPLAIN text plus the observed counters.
    let plain = s.sql(&format!("EXPLAIN {sql}")).unwrap().explain.unwrap();
    assert!(text.starts_with(&plain), "{text}");
    assert!(text.contains("Analyze: plan "), "{text}");
    assert!(text.contains(", exec "), "{text}");
    assert!(
        text.contains(&format!(
            "rows scanned: {}, lines evaluated: {}, postings probed: 0",
            out.stats.rows_scanned, out.stats.lines_evaluated
        )),
        "{text}"
    );
    assert!(
        text.contains(&format!(
            "buffer pool: {} hits, {} misses, {} evictions",
            out.stats.pool.hits, out.stats.pool.misses, out.stats.pool.evictions
        )),
        "{text}"
    );
    assert!(
        text.contains(&format!("returned: {} ranked row(s)", out.answers.len())),
        "{text}"
    );
    // Aggregates report the scalar instead of a row count.
    let agg = s
        .sql("EXPLAIN ANALYZE SELECT COUNT(*) FROM MAPData WHERE Data REGEXP 'President'")
        .expect("analyze aggregate");
    let agg_text = agg.explain.unwrap();
    let value = agg.aggregate.expect("aggregate executed").value;
    assert!(
        agg_text.contains(&format!("returned: COUNT(*) = {value}")),
        "{agg_text}"
    );
    // Keywords are case-insensitive, as everywhere in the grammar.
    assert!(s
        .sql(&format!("explain analyze {sql}"))
        .unwrap()
        .explain
        .is_some());
}

#[test]
fn aggregate_plans_stream_past_the_limit() {
    // LIMIT caps the *ranked* relation, never what an aggregate sees:
    // COUNT(*) with a tiny LIMIT still counts every qualifying line.
    let s = session(40, 107);
    let ranked = s
        .sql("SELECT DataKey FROM FullSFAData WHERE Data REGEXP 'the' LIMIT 3")
        .unwrap();
    assert_eq!(ranked.answers.len(), 3);
    let all = s
        .sql("SELECT DataKey FROM FullSFAData WHERE Data REGEXP 'the' LIMIT 100000")
        .unwrap();
    let count = s
        .sql("SELECT COUNT(*) FROM FullSFAData WHERE Data REGEXP 'the' LIMIT 3")
        .unwrap();
    assert_eq!(
        count.aggregate.unwrap().value,
        all.answers.len() as f64,
        "aggregates are computed over the full relation"
    );
    assert_eq!(count.stats.rows_scanned as usize, s.line_count());
}

#[test]
fn limit_offset_pages_tile_the_unpaged_ranking() {
    // Honest pagination: LIMIT n OFFSET m over SQL returns exactly rows
    // m..m+n of the full ranked relation — same keys, same probabilities,
    // no server-side re-slicing — and pages collectively tile it.
    let s = session(40, 211);
    let full = s
        .sql("SELECT DataKey, Prob FROM StaccatoData WHERE Data REGEXP 'the' LIMIT 100000")
        .expect("unpaged");
    assert!(full.answers.len() > 10, "corpus must match broadly");
    let page_size = 7;
    let mut paged = Vec::new();
    let mut offset = 0;
    loop {
        let page = s
            .sql(&format!(
                "SELECT DataKey, Prob FROM StaccatoData WHERE Data REGEXP 'the' \
                 LIMIT {page_size} OFFSET {offset}"
            ))
            .expect("page");
        if page.answers.is_empty() {
            break;
        }
        assert!(page.answers.len() <= page_size);
        paged.extend(page.answers);
        offset += page_size;
    }
    assert_eq!(paged.len(), full.answers.len());
    for (a, b) in paged.iter().zip(&full.answers) {
        assert_eq!(a.data_key, b.data_key);
        assert_eq!(a.probability, b.probability);
    }
    // The builder surface pages identically (same engine).
    let via_builder = s
        .execute(
            &QueryRequest::keyword("the")
                .num_ans(page_size)
                .offset(page_size),
        )
        .expect("builder page 2");
    let page2 = &paged[page_size..(2 * page_size).min(paged.len())];
    assert_eq!(via_builder.answers.len(), page2.len());
    for (a, b) in via_builder.answers.iter().zip(page2) {
        assert_eq!(a.data_key, b.data_key);
    }
    // And parallel scans return the same page, bit for bit.
    let parallel = s
        .execute(
            &QueryRequest::keyword("the")
                .num_ans(page_size)
                .offset(page_size)
                .parallelism(4),
        )
        .expect("parallel page 2");
    assert_eq!(parallel.answers, via_builder.answers);
}

#[test]
fn prepared_statements_rebind_across_executions() {
    let s = session(30, 109);
    let p = s
        .prepare("SELECT DataKey FROM StaccatoData WHERE Data REGEXP ? AND Prob >= ? LIMIT ?")
        .expect("prepare");
    assert_eq!(p.param_count(), 3);
    for (pattern, threshold) in [("President", 0.0), ("Commission", 0.3)] {
        let out = s
            .execute_prepared(
                &p,
                &[
                    SqlValue::text(pattern),
                    SqlValue::Number(threshold),
                    SqlValue::Int(1000),
                ],
            )
            .expect("bound execution");
        let direct = s
            .execute(
                &QueryRequest::keyword(pattern)
                    .min_prob(threshold)
                    .num_ans(1000),
            )
            .expect("builder");
        assert_eq!(out.answers.len(), direct.answers.len(), "{pattern}");
        for (a, b) in out.answers.iter().zip(&direct.answers) {
            assert_eq!(a.data_key, b.data_key);
        }
    }
}

#[test]
fn sql_errors_are_loud_and_positioned() {
    let s = session(10, 113);
    for (sql, needle) in [
        (
            "SELECT DataKey FROM GroundTruth WHERE Data LIKE '%a%'",
            "unknown table",
        ),
        (
            "SELECT DataKey FROM MAPData WHERE Data LIKE '%a%' AND Prob >= 2.0",
            "outside [0, 1]",
        ),
        (
            "SELECT COUNT(*) FROM MAPData WHERE Data LIKE '%a%' ORDER BY Prob DESC",
            "ORDER BY",
        ),
        (
            "SELECT DataKey FROM MAPData WHERE Data REGEXP 'a(b'",
            "bad pattern",
        ),
        ("DELETE FROM MAPData", "SELECT"),
    ] {
        let err = s.sql(sql).expect_err(sql);
        assert!(err.to_string().contains(needle), "{sql}: {err}");
    }
}

#[test]
fn insert_and_history_execute_end_to_end() {
    let s = session(8, 211);

    // Literal multi-row INSERT: two documents, one atomic batch.
    let out = s
        .sql(
            "INSERT INTO StaccatoData (DocName, Data) VALUES \
             ('minutes.png', 'the committee on quixotic affairs convened'), \
             ('roll.png', 'a quorum of quixotic members answered the roll')",
        )
        .expect("insert");
    assert_eq!(out.plan, Plan::Ingest { rows: 2 });
    let receipt = out.ingest.expect("receipt");
    assert_eq!(receipt.batch_seq, 1);
    assert_eq!(receipt.first_key, 8);
    assert_eq!(receipt.docs, 2);
    assert!(out.stats.wal.records_appended == 0, "no WAL attached");

    // Prepared INSERT binds both strings on execute.
    let p = s
        .prepare("INSERT INTO StaccatoData (DocName, Data) VALUES (?, ?)")
        .expect("prepare");
    assert_eq!(p.param_count(), 2);
    let out = s
        .execute_prepared(
            &p,
            &[
                SqlValue::text("late.png"),
                SqlValue::text("one more quixotic document"),
            ],
        )
        .expect("execute");
    assert_eq!(out.ingest.expect("receipt").batch_seq, 2);

    // The new rows answer ordinary SELECTs immediately.
    let hits = s
        .sql("SELECT DataKey FROM MAPData WHERE Data LIKE '%quixotic%' LIMIT 10")
        .expect("select")
        .answers;
    assert_eq!(hits.len(), 3);
    assert!(hits.iter().all(|a| a.data_key >= 8));

    // History reflects both batches, filters, and pages.
    let rows = s
        .sql("SELECT * FROM StaccatoHistory")
        .expect("history")
        .history
        .expect("rows");
    assert_eq!(rows.len(), 3, "loaded corpus lines carry no history");
    assert!(rows.iter().all(|r| r.provider == "sql"));
    let filtered = s
        .sql("SELECT * FROM StaccatoHistory WHERE FileName LIKE '%.png' LIMIT 2")
        .expect("history")
        .history
        .expect("rows");
    assert_eq!(filtered.len(), 2);

    // Write statements refuse EXPLAIN, and wrong shapes name the fix.
    for (sql, needle) in [
        (
            "INSERT INTO MAPData (DocName, Data) VALUES ('a', 'b')",
            "StaccatoData",
        ),
        ("EXPLAIN SELECT * FROM StaccatoHistory", "EXPLAIN"),
        ("SELECT * FROM MAPData WHERE Data LIKE '%a%'", "SELECT list"),
    ] {
        let err = s.sql(sql).expect_err(sql);
        assert!(err.to_string().contains(needle), "{sql}: {err}");
    }
}

#[test]
fn quoted_quotes_reach_the_pattern_verbatim() {
    let s = session(10, 127);
    let out = s
        .sql("SELECT DataKey FROM MAPData WHERE Data LIKE '%O''Hare%'")
        .expect("escaped quote");
    assert!(out.answers.is_empty(), "corpus has no O'Hare");
    // And the round trip preserves the escape through a prepared render.
    let p = s
        .prepare("SELECT DataKey FROM MAPData WHERE Data LIKE '%O''Hare%'")
        .unwrap();
    assert!(p.sql().contains("'%O''Hare%'"), "{}", p.sql());
}
