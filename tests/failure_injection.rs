//! Failure injection: corrupt pages, truncated blobs, malformed patterns.
//! Every failure must surface as a typed error — never a panic — on the
//! user-facing paths.

use staccato::approx::StaccatoParams;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::store::LoadOptions;
use staccato::query::{Query, QueryError, RecoverOptions};
use staccato::server::{HttpClient, Server, ServerConfig};
use staccato::sfa::codec;
use staccato::storage::{BlobStore, ColumnType, Database, Schema, StorageError, Value};
use staccato::{Approach, DocumentInput, IngestBatch, QueryRequest, Staccato, SyncPolicy};
use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn tiny_session() -> Staccato {
    let dataset = generate(CorpusKind::DbPapers, 8, 1);
    let db = Database::in_memory(256).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(1),
        kmap_k: 3,
        staccato: StaccatoParams::new(4, 3),
        parallelism: 1,
    };
    Staccato::load(db, &dataset, &opts).expect("load")
}

#[test]
fn corrupt_sfa_blob_surfaces_typed_error() {
    let session = tiny_session();
    let store = session.store();
    // Find the first FullSFAData row's blob and stomp its magic bytes.
    let (schema, heap) = store.table("FullSFAData").expect("table");
    let (_, bytes) = heap
        .scan(store.db().pool())
        .next()
        .expect("row")
        .expect("scan");
    let row = staccato::storage::row::decode_row(&schema, &bytes).expect("row");
    let blob_page = row[1].as_blob().expect("blob id");
    {
        let mut page = store.db().pool().fetch_write(blob_page).expect("page");
        // Blob page layout: [next u64][len u32][payload...]; payload starts
        // with the SFA magic.
        page[12..16].copy_from_slice(b"XXXX");
    }
    let request = QueryRequest::keyword("data").num_ans(10);
    let err = session
        .execute(&request.clone().approach(Approach::FullSfa))
        .unwrap_err();
    assert!(matches!(err, QueryError::Sfa(_)), "got {err:?}");
    // The parallel executor must surface the same typed error.
    let err = session
        .execute(&request.clone().approach(Approach::FullSfa).parallelism(4))
        .unwrap_err();
    assert!(matches!(err, QueryError::Sfa(_)), "parallel got {err:?}");
    // Other representations are unaffected.
    session
        .execute(&request.clone().approach(Approach::Map))
        .expect("MAP still works");
    session
        .execute(&request.approach(Approach::Staccato))
        .expect("STACCATO still works");
}

#[test]
fn truncated_blob_chain_is_detected() {
    let db = Database::in_memory(128).expect("db");
    let data = vec![9u8; 20_000]; // 3 pages
    let id = BlobStore::put(db.pool(), &data).expect("put");
    // Break the chain: point the first page at a bogus page id.
    {
        let mut page = db.pool().fetch_write(id).expect("page");
        page[0..8].copy_from_slice(&9999u64.to_le_bytes());
    }
    let err = BlobStore::get(db.pool(), id).unwrap_err();
    assert!(
        matches!(
            err,
            StorageError::PageOutOfBounds(_) | StorageError::CorruptBlob { .. }
        ),
        "got {err}"
    );
}

#[test]
fn malformed_patterns_do_not_panic() {
    for bad in ["a(b", "*x", "[z-a]", r"\q", "a)b", "héllo"] {
        assert!(Query::regex(bad).is_err(), "{bad:?} should be rejected");
    }
    for bad in ["abc\\", "héllo%"] {
        assert!(Query::like(bad).is_err(), "{bad:?} should be rejected");
    }
}

#[test]
fn decoding_garbage_blobs_never_panics() {
    // Fuzz-ish: random mutations of a valid blob must decode or error,
    // never panic or over-allocate.
    let sfa = staccato::sfa::Sfa::from_string("fuzz me gently");
    let blob = codec::encode(&sfa);
    for i in 0..blob.len() {
        let mut m = blob.clone();
        m[i] ^= 0xA5;
        let _ = codec::decode(&m); // any Result is fine
    }
    // And pure garbage of various lengths.
    for len in [0usize, 1, 3, 4, 16, 64] {
        let garbage = vec![0xA5u8; len];
        assert!(codec::decode(&garbage).is_err());
    }
}

#[test]
fn paper_table5_schema_fidelity() {
    // The store must create exactly the paper's tables (Table 5 plus the
    // MAPData split) with the right columns.
    let session = tiny_session();
    let store = session.store();
    let expect: &[(&str, &[&str])] = &[
        ("MasterData", &["DataKey", "DocName", "SFANum"]),
        ("MAPData", &["DataKey", "Data", "LogProb"]),
        ("kMAPData", &["DataKey", "LineNum", "Data", "LogProb"]),
        ("FullSFAData", &["DataKey", "SFABlob"]),
        (
            "StaccatoData",
            &["DataKey", "ChunkNum", "LineNum", "Data", "LogProb"],
        ),
        ("StaccatoGraph", &["DataKey", "GraphBlob"]),
        ("GroundTruth", &["DataKey", "Data"]),
    ];
    for (table, cols) in expect {
        let (schema, _) = store
            .table(table)
            .unwrap_or_else(|_| panic!("missing {table}"));
        let got: Vec<&str> = schema.cols.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(&got, cols, "columns of {table}");
    }
}

#[test]
fn schema_mismatch_rows_error_cleanly() {
    let db = Database::in_memory(64).expect("db");
    let schema = Schema::new(&[("a", ColumnType::Int), ("b", ColumnType::Text)]);
    let heap = db.create_table("t", schema.clone()).expect("table");
    // Insert bytes that are too short for the schema.
    heap.insert(db.pool(), &[1, 2, 3])
        .expect("raw insert is allowed");
    let (_, bytes) = heap.scan(db.pool()).next().expect("row").expect("scan");
    assert!(matches!(
        staccato::storage::row::decode_row(&schema, &bytes),
        Err(StorageError::SchemaMismatch(_))
    ));
    // Wrong value type on encode.
    assert!(staccato::storage::row::encode_row(
        &schema,
        &vec![Value::Text("x".into()), Value::Int(1)]
    )
    .is_err());
}

#[test]
fn client_disconnect_mid_response_leaves_the_server_usable() {
    // A client that sends a valid query and vanishes before reading
    // the answer must cost the server exactly one dead socket: the
    // worker writing into it sees the error (or writes into the void),
    // drops the connection, and keeps serving everyone else off the
    // same shared session.
    let session = Arc::new(tiny_session());
    let config = ServerConfig {
        poll_interval: Duration::from_millis(5),
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&session), config).expect("server");
    let addr = server.addr();

    for round in 0..3 {
        // Fire a real query and hang up without reading a byte back.
        let mut rude = TcpStream::connect(addr).expect("connect");
        let body = "{\"sql\": \"SELECT DataKey, Prob FROM FullSFAData \
                    WHERE Data REGEXP 'a' LIMIT 1000\"}";
        rude.write_all(
            format!(
                "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send");
        drop(rude);

        // And one that hangs up mid-request head, for good measure.
        let mut ruder = TcpStream::connect(addr).expect("connect");
        ruder.write_all(b"POST /que").expect("send partial");
        drop(ruder);

        // The server keeps answering on fresh connections.
        let mut client = HttpClient::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let health = client.get("/healthz").expect("healthz survives");
        assert_eq!(health.status, 200, "round {round}: {}", health.body);
        let resp = client
            .post(
                "/query",
                "{\"sql\": \"SELECT DataKey FROM MAPData WHERE Data REGEXP 'a' LIMIT 3\"}",
            )
            .expect("query survives");
        assert_eq!(resp.status, 200, "round {round}: {}", resp.body);
    }

    server.shutdown();
    // The session behind the server is still healthy for embedded use.
    session
        .execute(&QueryRequest::keyword("data").num_ans(5))
        .expect("session usable after disconnect faults");
}

// ---------------------------------------------------------------------
// WAL fault injection: every on-disk corruption a crash can leave must
// recover to a consistent prefix of the committed batches — or surface
// a typed error — never a panic, never a half-applied batch.

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("staccato_walfi_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn wal_options(seed: u64) -> LoadOptions {
    LoadOptions {
        channel: ChannelConfig::compact(seed),
        kmap_k: 3,
        staccato: StaccatoParams::new(4, 3),
        parallelism: 1,
    }
}

/// Load 8 lines, checkpoint, attach a WAL, ingest `batches` one-doc
/// batches, and crash (drop without checkpointing).
fn crashable_store(dir: &Path, batches: u64) -> LoadOptions {
    let opts = wal_options(1);
    let dataset = generate(CorpusKind::DbPapers, 8, 1);
    let db = Database::create(dir.join("store.db"), 1024).expect("create");
    let session = Staccato::load(db, &dataset, &opts).expect("load");
    session.checkpoint().expect("checkpoint");
    session
        .attach_wal(&dir.join("wal"), SyncPolicy::Commit)
        .expect("attach");
    for n in 1..=batches {
        session
            .ingest(IngestBatch::new().doc(DocumentInput::new(
                format!("doc-{n}.png"),
                format!("probabilistic lineage query number {n}"),
            )))
            .expect("ingest");
    }
    opts
}

fn recover(dir: &Path, opts: &LoadOptions) -> Staccato {
    Staccato::recover_with(
        &dir.join("store.db"),
        &dir.join("wal"),
        &RecoverOptions {
            pool_frames: 1024,
            load: opts.clone(),
            sync: SyncPolicy::Commit,
        },
    )
    .expect("recover")
}

fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir.join("wal"))
        .expect("wal dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segments.sort();
    segments
}

#[test]
fn truncated_wal_tail_recovers_the_whole_record_prefix() {
    let dir = TempDir::new("trunc");
    let opts = crashable_store(dir.path(), 3);
    // Tear deep into the last record — past its payload, into the frame.
    let last = wal_segments(dir.path()).pop().expect("segment");
    let len = std::fs::metadata(&last).expect("meta").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&last)
        .expect("open")
        .set_len(len - 40)
        .expect("truncate");

    let session = recover(dir.path(), &opts);
    assert_eq!(session.line_count(), 10, "batches 1-2 survive, 3 is torn");
    assert_eq!(session.ingest_stats().replays, 2);
    let history = session
        .sql("SELECT * FROM StaccatoHistory")
        .expect("history")
        .history
        .expect("rows");
    assert_eq!(history.len(), 2);
    assert!(history.iter().all(|r| r.file_name != "doc-3.png"));
}

#[test]
fn corrupted_crc_cuts_the_log_at_the_bad_record() {
    let dir = TempDir::new("crc");
    let opts = crashable_store(dir.path(), 3);
    // Flip one payload byte in the middle of the segment: the CRC of
    // some record (not the last) stops matching, so recovery must stop
    // there even though whole records follow it.
    let last = wal_segments(dir.path()).pop().expect("segment");
    let mut bytes = std::fs::read(&last).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    std::fs::write(&last, &bytes).expect("write");

    let session = recover(dir.path(), &opts);
    assert!(
        session.line_count() < 11,
        "the corrupt record and everything after it must be dropped, got {}",
        session.line_count()
    );
    assert!(session.line_count() >= 8, "the checkpoint always survives");
    // The recovered prefix is fully consistent: history and rows agree.
    let history = session
        .sql("SELECT * FROM StaccatoHistory")
        .expect("history")
        .history
        .expect("rows");
    assert_eq!(history.len(), session.line_count() - 8);
}

#[test]
fn replay_is_idempotent_over_checkpoints_and_repeated_recovery() {
    let dir = TempDir::new("idem");
    let opts = wal_options(1);
    let dataset = generate(CorpusKind::DbPapers, 8, 1);
    {
        let db = Database::create(dir.path().join("store.db"), 1024).expect("create");
        let session = Staccato::load(db, &dataset, &opts).expect("load");
        session.checkpoint().expect("checkpoint");
        session
            .attach_wal(&dir.path().join("wal"), SyncPolicy::Commit)
            .expect("attach");
        for n in 1..=2u64 {
            session
                .ingest(IngestBatch::new().doc(DocumentInput::new(
                    format!("doc-{n}.png"),
                    format!("checkpointed batch {n}"),
                )))
                .expect("ingest");
        }
        // Checkpoint AFTER the first two batches: their WAL records are
        // now duplicates of durable state and must be skipped on replay.
        session.checkpoint().expect("mid-stream checkpoint");
        session
            .ingest(IngestBatch::new().doc(DocumentInput::new("doc-3.png", "the unflushed batch")))
            .expect("ingest");
        // Crash without another checkpoint.
    }

    let first = recover(dir.path(), &opts);
    assert_eq!(first.line_count(), 11);
    assert_eq!(
        first.ingest_stats().replays,
        1,
        "batches 1-2 are already in the checkpoint; only 3 replays"
    );
    let keys: Vec<i64> = first
        .sql("SELECT * FROM StaccatoHistory")
        .expect("history")
        .history
        .expect("rows")
        .iter()
        .map(|r| r.data_key)
        .collect();
    assert_eq!(keys, vec![8, 9, 10], "no duplicated history rows");
    drop(first);

    // Recover a second time from the same files (the first recovery was
    // itself never checkpointed): identical outcome, no double-apply.
    let second = recover(dir.path(), &opts);
    assert_eq!(second.line_count(), 11);
    let keys: Vec<i64> = second
        .sql("SELECT * FROM StaccatoHistory")
        .expect("history")
        .history
        .expect("rows")
        .iter()
        .map(|r| r.data_key)
        .collect();
    assert_eq!(keys, vec![8, 9, 10]);
}

/// Group commit's durability contract: `ingest()` returns only once the
/// batch's LSN is covered by a (possibly shared) fsync, so a crash
/// immediately after the last acknowledgment loses nothing — every
/// acknowledged batch replays, whichever flush leader synced it.
#[test]
fn group_commit_crash_replays_every_acknowledged_batch() {
    const WRITERS: u64 = 4;
    const BATCHES_PER_WRITER: u64 = 3;

    let dir = TempDir::new("group_ack");
    let opts = wal_options(1);
    let dataset = generate(CorpusKind::DbPapers, 8, 1);
    {
        let db = Database::create(dir.path().join("store.db"), 1024).expect("create");
        let session = Arc::new(Staccato::load(db, &dataset, &opts).expect("load"));
        session.checkpoint().expect("checkpoint");
        session
            .attach_wal(&dir.path().join("wal"), SyncPolicy::Commit)
            .expect("attach");
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    for b in 0..BATCHES_PER_WRITER {
                        let receipt = session
                            .ingest(IngestBatch::new().doc(DocumentInput::new(
                                format!("w{w}-b{b}.png"),
                                format!("writer {w} durable batch {b}"),
                            )))
                            .expect("ingest");
                        assert!(receipt.lsn > 0, "WAL attached: the ack names an LSN");
                    }
                });
            }
        });
        let stats = session.ingest_stats();
        assert!(stats.wal_group_commits > 0, "{stats:?}");
        assert!(
            stats.wal_fsyncs <= stats.wal_records_appended + 1,
            "group commit never syncs more than once per record: {stats:?}"
        );
        // Crash: every batch was acknowledged, none checkpointed.
    }

    let session = recover(dir.path(), &opts);
    let total = WRITERS * BATCHES_PER_WRITER;
    assert_eq!(session.ingest_stats().replays, total);
    assert_eq!(session.line_count() as u64, 8 + total);
    let history = session
        .sql("SELECT * FROM StaccatoHistory")
        .expect("history")
        .history
        .expect("rows");
    assert_eq!(history.len() as u64, total, "no acknowledged batch is lost");
}

/// A crash that lands between the WAL append and the group fsync leaves
/// an arbitrary tail of the segment missing. Wherever the cut falls —
/// mid-frame, mid-payload, or exactly on a record boundary — recovery
/// must truncate to the whole-record prefix and succeed; a torn tail is
/// a normal crash shape, never `CorruptWal`.
#[test]
fn torn_group_commit_tail_is_truncated_at_every_cut_point() {
    let dir = TempDir::new("cutsweep");
    let opts = crashable_store(dir.path(), 4);

    // Progressively tear the tail: each recovery truncates the torn
    // record on disk, so every iteration is a fresh, deeper crash state.
    let mut survivors = 4u64;
    for cut in [1u64, 7, 23, 64, 150] {
        let last = wal_segments(dir.path()).pop().expect("segment");
        let len = std::fs::metadata(&last).expect("meta").len();
        if len <= cut {
            break;
        }
        std::fs::OpenOptions::new()
            .write(true)
            .open(&last)
            .expect("open")
            .set_len(len - cut)
            .expect("truncate");

        // Tearing must surface as truncation, not corruption.
        let session = recover(dir.path(), &opts);
        let replayed = session.ingest_stats().replays;
        assert!(
            replayed <= survivors,
            "cut {cut}: tearing cannot resurrect batches ({replayed} > {survivors})"
        );
        survivors = replayed;
        // The surviving prefix is exactly batches 1..=replayed, fully
        // consistent between rows and history.
        assert_eq!(session.line_count() as u64, 8 + replayed);
        let history = session
            .sql("SELECT * FROM StaccatoHistory")
            .expect("history")
            .history
            .expect("rows");
        assert_eq!(history.len() as u64, replayed);
        for (i, row) in history.iter().enumerate() {
            assert_eq!(row.file_name, format!("doc-{}.png", i + 1));
        }
    }
    assert!(
        survivors < 4,
        "the sweep must actually have torn records away"
    );
}

#[test]
fn pool_too_small_for_pins_reports_exhaustion() {
    let db = Database::in_memory(2).expect("db");
    let p0 = db.pool().allocate().expect("page");
    let p1 = db.pool().allocate().expect("page");
    let p2 = db.pool().allocate().expect("page");
    let _a = db.pool().fetch_read(p0).expect("pin 0");
    let _b = db.pool().fetch_read(p1).expect("pin 1");
    assert!(matches!(
        db.pool().fetch_read(p2),
        Err(StorageError::PoolExhausted)
    ));
}
