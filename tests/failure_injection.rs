//! Failure injection: corrupt pages, truncated blobs, malformed patterns.
//! Every failure must surface as a typed error — never a panic — on the
//! user-facing paths.

use staccato::approx::StaccatoParams;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::store::LoadOptions;
use staccato::query::{Query, QueryError};
use staccato::server::{HttpClient, Server, ServerConfig};
use staccato::sfa::codec;
use staccato::storage::{BlobStore, ColumnType, Database, Schema, StorageError, Value};
use staccato::{Approach, QueryRequest, Staccato};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn tiny_session() -> Staccato {
    let dataset = generate(CorpusKind::DbPapers, 8, 1);
    let db = Database::in_memory(256).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(1),
        kmap_k: 3,
        staccato: StaccatoParams::new(4, 3),
        parallelism: 1,
    };
    Staccato::load(db, &dataset, &opts).expect("load")
}

#[test]
fn corrupt_sfa_blob_surfaces_typed_error() {
    let session = tiny_session();
    let store = session.store();
    // Find the first FullSFAData row's blob and stomp its magic bytes.
    let (schema, heap) = store.table("FullSFAData").expect("table");
    let (_, bytes) = heap
        .scan(store.db().pool())
        .next()
        .expect("row")
        .expect("scan");
    let row = staccato::storage::row::decode_row(&schema, &bytes).expect("row");
    let blob_page = row[1].as_blob().expect("blob id");
    {
        let mut page = store.db().pool().fetch_write(blob_page).expect("page");
        // Blob page layout: [next u64][len u32][payload...]; payload starts
        // with the SFA magic.
        page[12..16].copy_from_slice(b"XXXX");
    }
    let request = QueryRequest::keyword("data").num_ans(10);
    let err = session
        .execute(&request.clone().approach(Approach::FullSfa))
        .unwrap_err();
    assert!(matches!(err, QueryError::Sfa(_)), "got {err:?}");
    // The parallel executor must surface the same typed error.
    let err = session
        .execute(&request.clone().approach(Approach::FullSfa).parallelism(4))
        .unwrap_err();
    assert!(matches!(err, QueryError::Sfa(_)), "parallel got {err:?}");
    // Other representations are unaffected.
    session
        .execute(&request.clone().approach(Approach::Map))
        .expect("MAP still works");
    session
        .execute(&request.approach(Approach::Staccato))
        .expect("STACCATO still works");
}

#[test]
fn truncated_blob_chain_is_detected() {
    let db = Database::in_memory(128).expect("db");
    let data = vec![9u8; 20_000]; // 3 pages
    let id = BlobStore::put(db.pool(), &data).expect("put");
    // Break the chain: point the first page at a bogus page id.
    {
        let mut page = db.pool().fetch_write(id).expect("page");
        page[0..8].copy_from_slice(&9999u64.to_le_bytes());
    }
    let err = BlobStore::get(db.pool(), id).unwrap_err();
    assert!(
        matches!(
            err,
            StorageError::PageOutOfBounds(_) | StorageError::CorruptBlob { .. }
        ),
        "got {err}"
    );
}

#[test]
fn malformed_patterns_do_not_panic() {
    for bad in ["a(b", "*x", "[z-a]", r"\q", "a)b", "héllo"] {
        assert!(Query::regex(bad).is_err(), "{bad:?} should be rejected");
    }
    for bad in ["abc\\", "héllo%"] {
        assert!(Query::like(bad).is_err(), "{bad:?} should be rejected");
    }
}

#[test]
fn decoding_garbage_blobs_never_panics() {
    // Fuzz-ish: random mutations of a valid blob must decode or error,
    // never panic or over-allocate.
    let sfa = staccato::sfa::Sfa::from_string("fuzz me gently");
    let blob = codec::encode(&sfa);
    for i in 0..blob.len() {
        let mut m = blob.clone();
        m[i] ^= 0xA5;
        let _ = codec::decode(&m); // any Result is fine
    }
    // And pure garbage of various lengths.
    for len in [0usize, 1, 3, 4, 16, 64] {
        let garbage = vec![0xA5u8; len];
        assert!(codec::decode(&garbage).is_err());
    }
}

#[test]
fn paper_table5_schema_fidelity() {
    // The store must create exactly the paper's tables (Table 5 plus the
    // MAPData split) with the right columns.
    let session = tiny_session();
    let store = session.store();
    let expect: &[(&str, &[&str])] = &[
        ("MasterData", &["DataKey", "DocName", "SFANum"]),
        ("MAPData", &["DataKey", "Data", "LogProb"]),
        ("kMAPData", &["DataKey", "LineNum", "Data", "LogProb"]),
        ("FullSFAData", &["DataKey", "SFABlob"]),
        (
            "StaccatoData",
            &["DataKey", "ChunkNum", "LineNum", "Data", "LogProb"],
        ),
        ("StaccatoGraph", &["DataKey", "GraphBlob"]),
        ("GroundTruth", &["DataKey", "Data"]),
    ];
    for (table, cols) in expect {
        let (schema, _) = store
            .table(table)
            .unwrap_or_else(|_| panic!("missing {table}"));
        let got: Vec<&str> = schema.cols.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(&got, cols, "columns of {table}");
    }
}

#[test]
fn schema_mismatch_rows_error_cleanly() {
    let db = Database::in_memory(64).expect("db");
    let schema = Schema::new(&[("a", ColumnType::Int), ("b", ColumnType::Text)]);
    let heap = db.create_table("t", schema.clone()).expect("table");
    // Insert bytes that are too short for the schema.
    heap.insert(db.pool(), &[1, 2, 3])
        .expect("raw insert is allowed");
    let (_, bytes) = heap.scan(db.pool()).next().expect("row").expect("scan");
    assert!(matches!(
        staccato::storage::row::decode_row(&schema, &bytes),
        Err(StorageError::SchemaMismatch(_))
    ));
    // Wrong value type on encode.
    assert!(staccato::storage::row::encode_row(
        &schema,
        &vec![Value::Text("x".into()), Value::Int(1)]
    )
    .is_err());
}

#[test]
fn client_disconnect_mid_response_leaves_the_server_usable() {
    // A client that sends a valid query and vanishes before reading
    // the answer must cost the server exactly one dead socket: the
    // worker writing into it sees the error (or writes into the void),
    // drops the connection, and keeps serving everyone else off the
    // same shared session.
    let session = Arc::new(tiny_session());
    let config = ServerConfig {
        poll_interval: Duration::from_millis(5),
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&session), config).expect("server");
    let addr = server.addr();

    for round in 0..3 {
        // Fire a real query and hang up without reading a byte back.
        let mut rude = TcpStream::connect(addr).expect("connect");
        let body = "{\"sql\": \"SELECT DataKey, Prob FROM FullSFAData \
                    WHERE Data REGEXP 'a' LIMIT 1000\"}";
        rude.write_all(
            format!(
                "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send");
        drop(rude);

        // And one that hangs up mid-request head, for good measure.
        let mut ruder = TcpStream::connect(addr).expect("connect");
        ruder.write_all(b"POST /que").expect("send partial");
        drop(ruder);

        // The server keeps answering on fresh connections.
        let mut client = HttpClient::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let health = client.get("/healthz").expect("healthz survives");
        assert_eq!(health.status, 200, "round {round}: {}", health.body);
        let resp = client
            .post(
                "/query",
                "{\"sql\": \"SELECT DataKey FROM MAPData WHERE Data REGEXP 'a' LIMIT 3\"}",
            )
            .expect("query survives");
        assert_eq!(resp.status, 200, "round {round}: {}", resp.body);
    }

    server.shutdown();
    // The session behind the server is still healthy for embedded use.
    session
        .execute(&QueryRequest::keyword("data").num_ans(5))
        .expect("session usable after disconnect faults");
}

#[test]
fn pool_too_small_for_pins_reports_exhaustion() {
    let db = Database::in_memory(2).expect("db");
    let p0 = db.pool().allocate().expect("page");
    let p1 = db.pool().allocate().expect("page");
    let p2 = db.pool().allocate().expect("page");
    let _a = db.pool().fetch_read(p0).expect("pin 0");
    let _b = db.pool().fetch_read(p1).expect("pin 1");
    assert!(matches!(
        db.pool().fetch_read(p2),
        Err(StorageError::PoolExhausted)
    ));
}
