//! End-to-end tests of the HTTP service tier: a real server on an
//! ephemeral port, exercised with the crate's own blocking client.

use staccato::approx::StaccatoParams;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::store::LoadOptions;
use staccato::server::{HttpClient, Json, RateLimit, Server, ServerConfig, ServerHandle};
use staccato::storage::Database;
use staccato::Staccato;
use std::sync::Arc;
use std::time::Duration;

fn session(lines: usize) -> Arc<Staccato> {
    let dataset = generate(CorpusKind::CongressActs, lines, 11);
    let db = Database::in_memory(1024).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(11),
        kmap_k: 4,
        staccato: StaccatoParams::new(6, 4),
        parallelism: 2,
    };
    Arc::new(Staccato::load(db, &dataset, &opts).expect("load"))
}

/// A snappy test config: short polls so requests never wait long on
/// the multiplexer, no rate limit unless a test asks for one.
fn test_config() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(5),
        workers: 2,
        ..ServerConfig::default()
    }
}

fn boot(session: Arc<Staccato>, config: ServerConfig) -> ServerHandle {
    Server::start(session, config).expect("server starts on an ephemeral port")
}

fn rows_of(body: &Json) -> Vec<(i64, f64)> {
    body.get("rows")
        .and_then(Json::as_array)
        .expect("rows array")
        .iter()
        .map(|r| {
            (
                r.get("key").unwrap().as_f64().unwrap() as i64,
                r.get("prob").unwrap().as_f64().unwrap(),
            )
        })
        .collect()
}

fn error_code(body: &Json) -> String {
    body.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("error envelope")
        .to_string()
}

#[test]
fn query_prepare_execute_match_the_embedded_session() {
    let session = session(40);
    let server = boot(Arc::clone(&session), test_config());
    let mut client = HttpClient::connect(server.addr()).expect("connect");

    // Health first: the server is up and sees the corpus.
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let health = health.json().expect("json");
    assert_eq!(health.get("lines").unwrap().as_u64(), Some(40));

    // POST /query equals the embedded session's answer exactly.
    let sql = "SELECT DataKey, Prob FROM MAPData WHERE Data REGEXP 'President' LIMIT 10";
    let over_http = client
        .post("/query", &format!("{{\"sql\": {:?}}}", sql))
        .expect("query");
    assert_eq!(over_http.status, 200, "{}", over_http.body);
    let over_http = over_http.json().expect("json");
    let embedded = session.sql(sql).expect("embedded");
    let expected: Vec<(i64, f64)> = embedded
        .answers
        .iter()
        .map(|a| (a.data_key, a.probability))
        .collect();
    let got = rows_of(&over_http);
    assert_eq!(got.len(), expected.len());
    for ((hk, hp), (ek, ep)) in got.iter().zip(&expected) {
        assert_eq!(hk, ek);
        assert!((hp - ep).abs() < 1e-12);
    }
    assert_eq!(
        over_http.get("plan").unwrap().as_str(),
        Some(embedded.plan.kind())
    );
    assert!(over_http.get("stats").unwrap().get("exec_us").is_some());

    // Prepare once, execute with two different bindings.
    let prepared = client
        .post(
            "/prepare",
            "{\"sql\": \"SELECT DataKey FROM MAPData WHERE Data REGEXP ? LIMIT ?\"}",
        )
        .expect("prepare");
    assert_eq!(prepared.status, 200, "{}", prepared.body);
    let prepared = prepared.json().expect("json");
    let id = prepared.get("statement_id").unwrap().as_u64().unwrap();
    assert_eq!(prepared.get("param_count").unwrap().as_u64(), Some(2));
    for (pattern, limit) in [("President", 5), ("Public", 3)] {
        let executed = client
            .post(
                "/execute",
                &format!("{{\"statement_id\": {id}, \"params\": [{pattern:?}, {limit}]}}"),
            )
            .expect("execute");
        assert_eq!(executed.status, 200, "{}", executed.body);
        let direct = session
            .sql(&format!(
                "SELECT DataKey FROM MAPData WHERE Data REGEXP '{pattern}' LIMIT {limit}"
            ))
            .expect("embedded");
        let got = rows_of(&executed.json().expect("json"));
        assert_eq!(
            got.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            direct
                .answers
                .iter()
                .map(|a| a.data_key)
                .collect::<Vec<_>>()
        );
    }

    // Aggregates come back as a scalar, not rows.
    let count = client
        .post(
            "/query",
            "{\"sql\": \"SELECT COUNT(*) FROM MAPData WHERE Data REGEXP 'the'\"}",
        )
        .expect("count");
    let count = count.json().expect("json");
    assert_eq!(count.get("row_count").unwrap().as_u64(), Some(0));
    let agg = count.get("aggregate").expect("aggregate member");
    assert_eq!(agg.get("func").unwrap().as_str(), Some("COUNT(*)"));
    assert!(agg.get("value").unwrap().as_f64().unwrap() > 0.0);

    server.shutdown();
}

#[test]
fn http_pagination_tiles_the_embedded_ranking() {
    let session = session(60);
    let server = boot(Arc::clone(&session), test_config());
    let mut client = HttpClient::connect(server.addr()).expect("connect");

    let unpaged = session
        .sql("SELECT DataKey, Prob FROM StaccatoData WHERE Data REGEXP 'the' LIMIT 100000")
        .expect("unpaged");
    let mut paged = Vec::new();
    let page_size = 7;
    loop {
        let sql = format!(
            "SELECT DataKey, Prob FROM StaccatoData WHERE Data REGEXP 'the' \
             LIMIT {page_size} OFFSET {}",
            paged.len()
        );
        let page = client
            .post("/query", &format!("{{\"sql\": {sql:?}}}"))
            .expect("page");
        assert_eq!(page.status, 200, "{}", page.body);
        let rows = rows_of(&page.json().expect("json"));
        let done = rows.len() < page_size;
        paged.extend(rows);
        if done {
            break;
        }
    }
    assert_eq!(paged.len(), unpaged.answers.len());
    for ((pk, pp), a) in paged.iter().zip(&unpaged.answers) {
        assert_eq!(*pk, a.data_key);
        assert!((pp - a.probability).abs() < 1e-12);
    }

    server.shutdown();
}

#[test]
fn more_connections_than_workers_all_make_progress() {
    let session = session(30);
    let server = boot(session, test_config()); // 2 workers
    let addr = server.addr();
    let threads: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client =
                    HttpClient::connect_as(addr, &format!("conn-{i}")).expect("connect");
                for _ in 0..5 {
                    let resp = client
                        .post(
                            "/query",
                            "{\"sql\": \"SELECT DataKey FROM MAPData \
                             WHERE Data REGEXP 'President' LIMIT 5\"}",
                        )
                        .expect("query");
                    assert_eq!(resp.status, 200, "{}", resp.body);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    server.shutdown();
}

#[test]
fn burst_over_the_token_bucket_answers_429_with_retry_after() {
    let session = session(20);
    let config = ServerConfig {
        rate_limit: Some(RateLimit::new(4, 2.0)),
        ..test_config()
    };
    let server = boot(session, config);

    let mut greedy = HttpClient::connect_as(server.addr(), "greedy").expect("connect");
    let mut oks = 0;
    let mut throttled = 0;
    for _ in 0..12 {
        let resp = greedy.get("/healthz").expect("healthz is exempt");
        assert_eq!(resp.status, 200, "healthz is never throttled");
        let resp = greedy
            .post(
                "/query",
                "{\"sql\": \"SELECT DataKey FROM MAPData WHERE Data REGEXP 'a' LIMIT 1\"}",
            )
            .expect("query");
        match resp.status {
            200 => oks += 1,
            429 => {
                throttled += 1;
                let retry = resp.header("retry-after").expect("Retry-After header");
                assert!(retry.parse::<u64>().expect("integer seconds") >= 1);
                assert_eq!(error_code(&resp.json().expect("json")), "RATE_LIMITED");
            }
            other => panic!("unexpected status {other}: {}", resp.body),
        }
    }
    assert!(oks >= 4, "the burst allowance must be served, got {oks}");
    assert!(throttled > 0, "12 back-to-back requests must throttle");

    // A different identity on the same IP has its own bucket.
    let mut polite = HttpClient::connect_as(server.addr(), "polite").expect("connect");
    let resp = polite
        .post(
            "/query",
            "{\"sql\": \"SELECT DataKey FROM MAPData WHERE Data REGEXP 'a' LIMIT 1\"}",
        )
        .expect("query");
    assert_eq!(resp.status, 200, "{}", resp.body);

    server.shutdown();
}

#[test]
fn error_codes_are_stable_and_bodies_are_enveloped() {
    let session = session(16);
    let config = ServerConfig {
        max_body_bytes: 512,
        ..test_config()
    };
    let server = boot(session, config);
    let mut client = HttpClient::connect(server.addr()).expect("connect");

    // Malformed SQL → 400 SQL_PARSE.
    let resp = client
        .post("/query", "{\"sql\": \"SELEC nothing\"}")
        .expect("post");
    assert_eq!(resp.status, 400);
    assert_eq!(error_code(&resp.json().expect("json")), "SQL_PARSE");

    // Non-JSON body → 400 BAD_REQUEST.
    let resp = client.post("/query", "this is not json").expect("post");
    assert_eq!(resp.status, 400);
    assert_eq!(error_code(&resp.json().expect("json")), "BAD_REQUEST");

    // Executing a statement that was never prepared → 404 UNKNOWN_STATEMENT.
    let resp = client
        .post("/execute", "{\"statement_id\": 7, \"params\": []}")
        .expect("post");
    assert_eq!(resp.status, 404);
    assert_eq!(error_code(&resp.json().expect("json")), "UNKNOWN_STATEMENT");

    // Unknown path → 404; wrong method on a known path → 405.
    let resp = client.get("/nope").expect("get");
    assert_eq!(resp.status, 404);
    assert_eq!(error_code(&resp.json().expect("json")), "NOT_FOUND");
    let resp = client.get("/query").expect("get");
    assert_eq!(resp.status, 405);
    assert_eq!(
        error_code(&resp.json().expect("json")),
        "METHOD_NOT_ALLOWED"
    );

    // Oversized body → 413 BODY_TOO_LARGE, and the server closes that
    // connection (the body was never read off the wire).
    let huge = format!(
        "{{\"sql\": \"SELECT DataKey FROM MAPData WHERE Data LIKE '%{}%'\"}}",
        "x".repeat(2048)
    );
    let resp = client.post("/query", &huge).expect("post");
    assert_eq!(resp.status, 413);
    assert_eq!(error_code(&resp.json().expect("json")), "BODY_TOO_LARGE");

    // A fresh connection works fine afterwards.
    let mut fresh = HttpClient::connect(server.addr()).expect("connect");
    assert_eq!(fresh.get("/healthz").expect("healthz").status, 200);

    // /stats saw all of this traffic.
    let stats = fresh.get("/stats").expect("stats").json().expect("json");
    let query_stats = stats
        .get("server")
        .unwrap()
        .get("endpoints")
        .unwrap()
        .get("query")
        .unwrap();
    assert!(query_stats.get("errors_4xx").unwrap().as_u64().unwrap() >= 2);
    assert!(stats.get("pool").unwrap().get("hit_rate").is_some());
    assert!(stats.get("query_cache").unwrap().get("misses").is_some());

    server.shutdown();
}

#[test]
fn ingest_over_http_is_immediately_queryable() {
    let server = boot(session(6), test_config());
    let mut client = HttpClient::connect(server.addr()).expect("connect");

    // POST /ingest commits a two-document batch and returns the receipt.
    let resp = client
        .post(
            "/ingest",
            "{\"documents\": [\
             {\"name\": \"net-a.png\", \"text\": \"a zymurgy treatise arrived over the wire\", \
              \"provider\": \"tess\", \"confidence\": 0.75, \"processing_time_ms\": 12}, \
             {\"name\": \"net-b.png\", \"text\": \"the zymurgy appendix followed\"}]}",
        )
        .expect("ingest");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let receipt = resp.json().expect("json");
    assert_eq!(receipt.get("batch_seq").unwrap().as_u64(), Some(1));
    assert_eq!(receipt.get("first_key").unwrap().as_u64(), Some(6));
    assert_eq!(receipt.get("docs").unwrap().as_u64(), Some(2));
    assert_eq!(
        receipt.get("wal_bytes").unwrap().as_u64(),
        Some(0),
        "in-memory session has no WAL attached"
    );

    // /healthz reflects the new lines with no refresh step.
    let health = client
        .get("/healthz")
        .expect("healthz")
        .json()
        .expect("json");
    assert_eq!(health.get("lines").unwrap().as_u64(), Some(8));

    // The documents answer /query immediately (FullSFA: the exact
    // lattice always carries the true string, MAP may decode past it).
    let hits = client
        .post(
            "/query",
            "{\"sql\": \"SELECT DataKey, Prob FROM FullSFAData \
             WHERE Data LIKE '%zymurgy%' LIMIT 10\"}",
        )
        .expect("query");
    assert_eq!(hits.status, 200);
    let rows = rows_of(&hits.json().expect("json"));
    assert_eq!(rows.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![6, 7]);
    assert!(rows.iter().all(|(_, p)| *p > 0.0));

    // ...and the history table rides the same endpoint, provenance intact.
    let history = client
        .post(
            "/query",
            "{\"sql\": \"SELECT * FROM StaccatoHistory WHERE FileName LIKE 'net-%'\"}",
        )
        .expect("history");
    assert_eq!(history.status, 200);
    let body = history.json().expect("json");
    let rows = body
        .get("history")
        .and_then(Json::as_array)
        .expect("history member")
        .to_vec();
    assert_eq!(rows.len(), 2);
    assert_eq!(
        rows[0].get("file_name").unwrap().as_str(),
        Some("net-a.png")
    );
    assert_eq!(rows[0].get("provider").unwrap().as_str(), Some("tess"));
    assert_eq!(rows[0].get("confidence").unwrap().as_f64(), Some(0.75));
    assert_eq!(rows[1].get("provider").unwrap().as_str(), Some("http"));

    // Malformed bodies get the stable error envelope, not a panic.
    for (body, code) in [
        ("{\"documents\": []}", "BAD_INGEST"),
        ("{\"documents\": [{\"name\": \"x.png\"}]}", "BAD_REQUEST"),
        (
            "{\"documents\": [{\"name\": \"x.png\", \"text\": \"t\", \"confidence\": 1.5}]}",
            "BAD_REQUEST",
        ),
        ("{\"docs\": []}", "BAD_REQUEST"),
    ] {
        let resp = client.post("/ingest", body).expect("post");
        assert_eq!(resp.status, 400, "{body}: {}", resp.body);
        assert_eq!(error_code(&resp.json().expect("json")), code, "{body}");
    }

    // /stats carries the session-cumulative ingest counters.
    let stats = client.get("/stats").expect("stats").json().expect("json");
    let ingest = stats.get("ingest").expect("ingest section");
    assert_eq!(ingest.get("batches").unwrap().as_u64(), Some(1));
    assert_eq!(ingest.get("docs").unwrap().as_u64(), Some(2));
    assert_eq!(ingest.get("replays").unwrap().as_u64(), Some(0));
    let endpoint = stats
        .get("server")
        .unwrap()
        .get("endpoints")
        .unwrap()
        .get("ingest")
        .expect("ingest endpoint stats");
    assert_eq!(endpoint.get("requests").unwrap().as_u64(), Some(5));
    assert_eq!(endpoint.get("errors_4xx").unwrap().as_u64(), Some(4));

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_the_in_flight_query() {
    let session = session(80);
    let server = boot(session, test_config());
    let addr = server.addr();

    // A deliberately heavy query (FullSFA scan over the whole corpus)
    // launched just before shutdown.
    let inflight = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).expect("connect");
        client
            .post(
                "/query",
                "{\"sql\": \"SELECT DataKey, Prob FROM FullSFAData \
                 WHERE Data REGEXP 'the' LIMIT 100000\"}",
            )
            .expect("in-flight query must complete")
    });
    // Give a worker time to pick the request up, then shut down while
    // it is (most likely) still executing.
    std::thread::sleep(Duration::from_millis(40));
    server.shutdown();

    let resp = inflight.join().expect("client thread");
    assert_eq!(
        resp.status, 200,
        "shutdown must drain, not truncate: {}",
        resp.body
    );
    let rows = rows_of(&resp.json().expect("json"));
    assert!(!rows.is_empty(), "the drained response carries its answer");

    // After shutdown the port no longer accepts work.
    match HttpClient::connect(addr) {
        Err(_) => {}
        Ok(mut client) => {
            // The OS may still complete the TCP handshake on a dying
            // listener; any request on it must fail, not hang.
            client
                .set_read_timeout(Some(Duration::from_secs(2)))
                .expect("timeout");
            assert!(client.get("/healthz").is_err());
        }
    }
}
