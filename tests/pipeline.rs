//! End-to-end integration tests: corpus → OCR channel → RDBMS store →
//! queries → metrics, across crates.

use staccato::approx::StaccatoParams;
use staccato::automata::Trie;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::metrics::{evaluate_answers, ground_truth};
use staccato::query::store::LoadOptions;
use staccato::query::Query;
use staccato::storage::Database;
use staccato::{Approach, PlanPreference, QueryRequest, Staccato};
use std::collections::BTreeSet;

fn load(kind: CorpusKind, lines: usize, seed: u64, m: usize, k: usize) -> Staccato {
    let dataset = generate(kind, lines, seed);
    let db = Database::in_memory(2048).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(seed),
        kmap_k: k,
        staccato: StaccatoParams::new(m, k),
        parallelism: 2,
    };
    Staccato::load(db, &dataset, &opts).expect("load")
}

#[test]
fn recall_ordering_map_kmap_staccato_fullsfa() {
    let session = load(CorpusKind::CongressActs, 80, 17, 12, 8);
    for pattern in ["President", "Commission", r"U.S.C. 2\d\d\d"] {
        let query = Query::regex(pattern).expect("pattern");
        let truth = ground_truth(session.store(), &query).expect("truth");
        if truth.is_empty() {
            continue;
        }
        let recall = |ap: Approach| {
            let out = session
                .execute(&QueryRequest::regex(pattern).approach(ap).num_ans(1000))
                .expect("query");
            evaluate_answers(&out.answers, &truth).recall
        };
        let (r_map, r_kmap, r_full, r_stac) = (
            recall(Approach::Map),
            recall(Approach::KMap),
            recall(Approach::FullSfa),
            recall(Approach::Staccato),
        );
        // The paper's central ordering: MAP ≤ k-MAP ≤ FullSFA = 1 and
        // MAP ≤ STACCATO ≤ FullSFA.
        assert!(
            r_map <= r_kmap + 1e-9,
            "{pattern}: MAP {r_map} > kMAP {r_kmap}"
        );
        assert!(
            r_kmap <= r_full + 1e-9,
            "{pattern}: kMAP {r_kmap} > Full {r_full}"
        );
        assert!(
            r_map <= r_stac + 1e-9,
            "{pattern}: MAP {r_map} > Stac {r_stac}"
        );
        assert!(
            (r_full - 1.0).abs() < 1e-9,
            "{pattern}: FullSFA recall {r_full} != 1"
        );
    }
}

#[test]
fn fullsfa_precision_collapses_under_numans() {
    // With NumAns far above the truth size, FullSFA's noise floor fills
    // the answer list with weak matches: precision ≈ truth / NumAns.
    // Needs the full-alphabet channel — the weak matches ARE the noise
    // floor ("any term may have some small probability of occurring at
    // every location", §2.1).
    let dataset = generate(CorpusKind::CongressActs, 120, 3);
    let db = Database::in_memory(4096).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig {
            seed: 3,
            ..ChannelConfig::default()
        },
        kmap_k: 8,
        staccato: StaccatoParams::new(12, 8),
        parallelism: 2,
    };
    let session = Staccato::load(db, &dataset, &opts).expect("load");
    let query = Query::keyword("President").expect("pattern");
    let truth = ground_truth(session.store(), &query).expect("truth");
    let request = QueryRequest::keyword("President").num_ans(100);
    let out = session
        .execute(&request.clone().approach(Approach::FullSfa))
        .expect("query");
    assert_eq!(
        out.answers.len(),
        100,
        "FullSFA must fill NumAns with weak answers"
    );
    assert_eq!(out.stats.lines_evaluated, 120);
    let m = evaluate_answers(&out.answers, &truth);
    assert!((m.recall - 1.0).abs() < 1e-9);
    assert!(
        m.precision < 0.5,
        "precision {p} should collapse",
        p = m.precision
    );
    // MAP stays high-precision.
    let m_map = evaluate_answers(
        &session
            .execute(&request.approach(Approach::Map))
            .expect("query")
            .answers,
        &truth,
    );
    assert!(m_map.precision > 0.9, "MAP precision {}", m_map.precision);
}

#[test]
fn staccato_probabilities_bounded_by_fullsfa() {
    let session = load(CorpusKind::DbPapers, 40, 9, 6, 4);
    let request = QueryRequest::keyword("database").num_ans(10_000);
    let full: std::collections::HashMap<i64, f64> = session
        .execute(&request.clone().approach(Approach::FullSfa))
        .expect("query")
        .answers
        .into_iter()
        .map(|a| (a.data_key, a.probability))
        .collect();
    for a in session
        .execute(&request.approach(Approach::Staccato))
        .expect("query")
        .answers
    {
        let p_full = full.get(&a.data_key).copied().unwrap_or(0.0);
        assert!(
            a.probability <= p_full + 1e-9,
            "line {}: staccato {} > full {}",
            a.data_key,
            a.probability,
            p_full
        );
    }
}

#[test]
fn index_and_filescan_agree_across_queries() {
    let session = load(CorpusKind::CongressActs, 90, 21, 10, 8);
    let dataset = generate(CorpusKind::CongressActs, 90, 21);
    let dict: BTreeSet<String> = dataset
        .lines()
        .flat_map(|(_, _, l)| {
            l.split(|c: char| !c.is_ascii_alphabetic())
                .filter(|w| w.len() >= 2)
                .map(|w| w.to_ascii_lowercase())
                .collect::<Vec<_>>()
        })
        .collect();
    let trie = Trie::build(&dict);
    session.register_index(&trie, "inv").expect("index");
    for pattern in ["President", "Commission", r"Public Law (8|9)\d"] {
        let request = QueryRequest::regex(pattern).num_ans(10_000);
        let scan_out = session
            .execute(
                &request
                    .clone()
                    .plan_preference(PlanPreference::ForceFileScan),
            )
            .expect("scan");
        assert!(!scan_out.plan.is_index_probe());
        let probe_out = session.execute(&request).expect("probe");
        assert!(
            probe_out.plan.is_index_probe(),
            "{pattern} should auto-probe"
        );
        let scan: BTreeSet<i64> = scan_out.answers.into_iter().map(|a| a.data_key).collect();
        let probe: BTreeSet<i64> = probe_out.answers.into_iter().map(|a| a.data_key).collect();
        assert_eq!(scan, probe, "answer sets differ for {pattern}");
    }
}

#[test]
fn store_persists_to_disk_and_reopens() {
    let dir = std::env::temp_dir().join(format!("staccato-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("it.db");
    let dataset = generate(CorpusKind::DbPapers, 20, 5);
    let expected_truth;
    {
        let db = Database::create(&path, 512).expect("create");
        let opts = LoadOptions {
            channel: ChannelConfig::compact(5),
            kmap_k: 4,
            staccato: StaccatoParams::new(5, 4),
            parallelism: 1,
        };
        let session = Staccato::load(db, &dataset, &opts).expect("load");
        let query = Query::keyword("lineage").expect("pattern");
        expected_truth = ground_truth(session.store(), &query).expect("truth");
        session.store().db().save().expect("save");
    }
    {
        // Reopen from the file; tables and blobs must be intact.
        let db = Database::open(&path, 512).expect("open");
        assert!(db.table_names().contains(&"GroundTruth".to_string()));
        let (schema, heap) = db.table("GroundTruth").expect("table");
        let query = Query::keyword("lineage").expect("pattern");
        let mut truth = BTreeSet::new();
        for item in heap.scan(db.pool()) {
            let (_, bytes) = item.expect("scan");
            let row = staccato::storage::row::decode_row(&schema, &bytes).expect("row");
            let text = row[1].as_text().expect("text");
            if query
                .dfa
                .is_accept(query.dfa.run_from(query.dfa.start(), text))
            {
                truth.insert(row[0].as_int().expect("key"));
            }
        }
        assert_eq!(truth, expected_truth);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn like_and_regex_queries_agree_on_keywords() {
    let session = load(CorpusKind::EnglishLit, 50, 2, 8, 6);
    for ap in [Approach::Map, Approach::KMap, Approach::Staccato] {
        let a = session
            .execute(&QueryRequest::like("%Brinkmann%").approach(ap).num_ans(1000))
            .expect("like query")
            .answers;
        let b = session
            .execute(
                &QueryRequest::keyword("Brinkmann")
                    .approach(ap)
                    .num_ans(1000),
            )
            .expect("regex query")
            .answers;
        assert_eq!(a.len(), b.len(), "{}", ap.name());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data_key, y.data_key);
            assert!((x.probability - y.probability).abs() < 1e-12);
        }
    }
}

#[test]
fn tuning_produces_feasible_parameters_end_to_end() {
    use staccato::approx::{tune, SizeModel, TuningConstraints};
    use staccato::sfa::codec;
    use staccato_bench::MemCorpus;

    let mut corpus = MemCorpus::build(CorpusKind::CongressActs, 60, 11, ChannelConfig::compact(11));
    let queries: Vec<Query> = ["President", "Commission"]
        .iter()
        .map(|p| Query::keyword(p).expect("kw"))
        .collect();
    let truths: Vec<BTreeSet<i64>> = queries.iter().map(|q| corpus.ground_truth(q)).collect();
    let model =
        SizeModel::from_line_lengths(&corpus.clean.iter().map(|l| l.len()).collect::<Vec<_>>());
    let budget = corpus.full_bytes() as f64 * 0.5; // generous for the tiny corpus
    let constraints = TuningConstraints {
        size_budget_bytes: budget,
        recall_target: 0.5,
        step: 5,
        max_m: 30,
    };
    let outcome = tune(&model, &constraints, |m, k| {
        let mut total = 0.0;
        for (q, t) in queries.iter().zip(&truths) {
            let answers = corpus.eval_staccato(m, k, q, 100);
            total += evaluate_answers(&answers, t).recall;
        }
        total / queries.len() as f64
    });
    let o = outcome.expect("feasible at generous constraints");
    assert!(o.recall >= 0.5);
    assert!(model.predicted_size(o.m, o.k) <= budget);
    // And the tuned representation actually exists / decodes.
    let rep = corpus.staccato(o.m, o.k);
    codec::decode(&rep[0]).expect("tuned representation decodes");
}
