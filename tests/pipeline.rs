//! End-to-end integration tests: corpus → OCR channel → RDBMS store →
//! queries → metrics, across crates.

use staccato::approx::StaccatoParams;
use staccato::automata::Trie;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::exec::{filescan_query, Approach};
use staccato::query::invindex::{build_index, indexed_query};
use staccato::query::metrics::{evaluate_answers, ground_truth};
use staccato::query::store::{LoadOptions, OcrStore};
use staccato::query::Query;
use staccato::storage::Database;
use std::collections::BTreeSet;

fn load(kind: CorpusKind, lines: usize, seed: u64, m: usize, k: usize) -> OcrStore {
    let dataset = generate(kind, lines, seed);
    let db = Database::in_memory(2048).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(seed),
        kmap_k: k,
        staccato: StaccatoParams::new(m, k),
        parallelism: 2,
    };
    OcrStore::load(db, &dataset, &opts).expect("load")
}

#[test]
fn recall_ordering_map_kmap_staccato_fullsfa() {
    let store = load(CorpusKind::CongressActs, 80, 17, 12, 8);
    for pattern in ["President", "Commission", r"U.S.C. 2\d\d\d"] {
        let query = Query::regex(pattern).expect("pattern");
        let truth = ground_truth(&store, &query).expect("truth");
        if truth.is_empty() {
            continue;
        }
        let recall = |ap: Approach| {
            let answers = filescan_query(&store, ap, &query, 1000).expect("query");
            evaluate_answers(&answers, &truth).recall
        };
        let (r_map, r_kmap, r_full, r_stac) = (
            recall(Approach::Map),
            recall(Approach::KMap),
            recall(Approach::FullSfa),
            recall(Approach::Staccato),
        );
        // The paper's central ordering: MAP ≤ k-MAP ≤ FullSFA = 1 and
        // MAP ≤ STACCATO ≤ FullSFA.
        assert!(r_map <= r_kmap + 1e-9, "{pattern}: MAP {r_map} > kMAP {r_kmap}");
        assert!(r_kmap <= r_full + 1e-9, "{pattern}: kMAP {r_kmap} > Full {r_full}");
        assert!(r_map <= r_stac + 1e-9, "{pattern}: MAP {r_map} > Stac {r_stac}");
        assert!((r_full - 1.0).abs() < 1e-9, "{pattern}: FullSFA recall {r_full} != 1");
    }
}

#[test]
fn fullsfa_precision_collapses_under_numans() {
    // With NumAns far above the truth size, FullSFA's noise floor fills
    // the answer list with weak matches: precision ≈ truth / NumAns.
    // Needs the full-alphabet channel — the weak matches ARE the noise
    // floor ("any term may have some small probability of occurring at
    // every location", §2.1).
    let dataset = generate(CorpusKind::CongressActs, 120, 3);
    let db = Database::in_memory(4096).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig { seed: 3, ..ChannelConfig::default() },
        kmap_k: 8,
        staccato: StaccatoParams::new(12, 8),
        parallelism: 2,
    };
    let store = OcrStore::load(db, &dataset, &opts).expect("load");
    let query = Query::keyword("President").expect("pattern");
    let truth = ground_truth(&store, &query).expect("truth");
    let answers = filescan_query(&store, Approach::FullSfa, &query, 100).expect("query");
    assert_eq!(answers.len(), 100, "FullSFA must fill NumAns with weak answers");
    let m = evaluate_answers(&answers, &truth);
    assert!((m.recall - 1.0).abs() < 1e-9);
    assert!(m.precision < 0.5, "precision {p} should collapse", p = m.precision);
    // MAP stays high-precision.
    let m_map = evaluate_answers(
        &filescan_query(&store, Approach::Map, &query, 100).expect("query"),
        &truth,
    );
    assert!(m_map.precision > 0.9, "MAP precision {}", m_map.precision);
}

#[test]
fn staccato_probabilities_bounded_by_fullsfa() {
    let store = load(CorpusKind::DbPapers, 40, 9, 6, 4);
    let query = Query::keyword("database").expect("pattern");
    let full: std::collections::HashMap<i64, f64> =
        filescan_query(&store, Approach::FullSfa, &query, 10_000)
            .expect("query")
            .into_iter()
            .map(|a| (a.data_key, a.probability))
            .collect();
    for a in filescan_query(&store, Approach::Staccato, &query, 10_000).expect("query") {
        let p_full = full.get(&a.data_key).copied().unwrap_or(0.0);
        assert!(
            a.probability <= p_full + 1e-9,
            "line {}: staccato {} > full {}",
            a.data_key,
            a.probability,
            p_full
        );
    }
}

#[test]
fn index_and_filescan_agree_across_queries() {
    let store = load(CorpusKind::CongressActs, 90, 21, 10, 8);
    let dataset = generate(CorpusKind::CongressActs, 90, 21);
    let dict: BTreeSet<String> = dataset
        .lines()
        .flat_map(|(_, _, l)| {
            l.split(|c: char| !c.is_ascii_alphabetic())
                .filter(|w| w.len() >= 2)
                .map(|w| w.to_ascii_lowercase())
                .collect::<Vec<_>>()
        })
        .collect();
    let trie = Trie::build(&dict);
    let index = build_index(&store, &trie, "inv").expect("index");
    for pattern in ["President", "Commission", r"Public Law (8|9)\d"] {
        let query = Query::regex(pattern).expect("pattern");
        let scan: BTreeSet<i64> = filescan_query(&store, Approach::Staccato, &query, 10_000)
            .expect("scan")
            .into_iter()
            .map(|a| a.data_key)
            .collect();
        let probe: BTreeSet<i64> = indexed_query(&store, &index, &query, 10_000)
            .expect("probe")
            .into_iter()
            .map(|a| a.data_key)
            .collect();
        assert_eq!(scan, probe, "answer sets differ for {pattern}");
    }
}

#[test]
fn store_persists_to_disk_and_reopens() {
    let dir = std::env::temp_dir().join(format!("staccato-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("it.db");
    let dataset = generate(CorpusKind::DbPapers, 20, 5);
    let expected_truth;
    {
        let db = Database::create(&path, 512).expect("create");
        let opts = LoadOptions {
            channel: ChannelConfig::compact(5),
            kmap_k: 4,
            staccato: StaccatoParams::new(5, 4),
            parallelism: 1,
        };
        let store = OcrStore::load(db, &dataset, &opts).expect("load");
        let query = Query::keyword("lineage").expect("pattern");
        expected_truth = ground_truth(&store, &query).expect("truth");
        store.db().save().expect("save");
    }
    {
        // Reopen from the file; tables and blobs must be intact.
        let db = Database::open(&path, 512).expect("open");
        assert!(db.table_names().contains(&"GroundTruth".to_string()));
        let (schema, heap) = db.table("GroundTruth").expect("table");
        let query = Query::keyword("lineage").expect("pattern");
        let mut truth = BTreeSet::new();
        for item in heap.scan(db.pool()) {
            let (_, bytes) = item.expect("scan");
            let row = staccato::storage::row::decode_row(&schema, &bytes).expect("row");
            let text = row[1].as_text().expect("text");
            if query.dfa.is_accept(query.dfa.run_from(query.dfa.start(), text)) {
                truth.insert(row[0].as_int().expect("key"));
            }
        }
        assert_eq!(truth, expected_truth);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn like_and_regex_queries_agree_on_keywords() {
    let store = load(CorpusKind::EnglishLit, 50, 2, 8, 6);
    let like = Query::like("%Brinkmann%").expect("like");
    let regex = Query::keyword("Brinkmann").expect("regex");
    for ap in [Approach::Map, Approach::KMap, Approach::Staccato] {
        let a: Vec<_> = filescan_query(&store, ap, &like, 1000).expect("like query");
        let b: Vec<_> = filescan_query(&store, ap, &regex, 1000).expect("regex query");
        assert_eq!(a.len(), b.len(), "{}", ap.name());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data_key, y.data_key);
            assert!((x.probability - y.probability).abs() < 1e-12);
        }
    }
}

#[test]
fn tuning_produces_feasible_parameters_end_to_end() {
    use staccato::approx::{tune, SizeModel, TuningConstraints};
    use staccato::sfa::codec;
    use staccato_bench::MemCorpus;

    let mut corpus = MemCorpus::build(CorpusKind::CongressActs, 60, 11, ChannelConfig::compact(11));
    let queries: Vec<Query> =
        ["President", "Commission"].iter().map(|p| Query::keyword(p).expect("kw")).collect();
    let truths: Vec<BTreeSet<i64>> = queries.iter().map(|q| corpus.ground_truth(q)).collect();
    let model = SizeModel::from_line_lengths(
        &corpus.clean.iter().map(|l| l.len()).collect::<Vec<_>>(),
    );
    let budget = corpus.full_bytes() as f64 * 0.5; // generous for the tiny corpus
    let constraints =
        TuningConstraints { size_budget_bytes: budget, recall_target: 0.5, step: 5, max_m: 30 };
    let outcome = tune(&model, &constraints, |m, k| {
        let mut total = 0.0;
        for (q, t) in queries.iter().zip(&truths) {
            let answers = corpus.eval_staccato(m, k, q, 100);
            total += evaluate_answers(&answers, t).recall;
        }
        total / queries.len() as f64
    });
    let o = outcome.expect("feasible at generous constraints");
    assert!(o.recall >= 0.5);
    assert!(model.predicted_size(o.m, o.k) <= budget);
    // And the tuned representation actually exists / decodes.
    let rep = corpus.staccato(o.m, o.k);
    codec::decode(&rep[0]).expect("tuned representation decodes");
}
