//! Differential tests for the compiled scan kernel: on every row the
//! kernel must produce *bit-identical* (`f64::to_bits`) probabilities to
//! the naive reference evaluators (`eval_sfa` / `eval_strings`), across
//! random SFAs, random patterns, and all four representations — and a
//! prescreen skip must only ever happen on rows whose exact probability
//! under the full DP is zero.

use proptest::prelude::*;
use staccato::approx::{approximate, StaccatoParams};
use staccato::query::kernel::ScanScratch;
use staccato::query::{eval_sfa, eval_strings, Query};
use staccato::sfa::{codec, Emission, Sfa, SfaBuilder};

/// A small random SFA shaped like OCR output — a chain with occasional
/// two-branch bubbles (same shape `tests/properties.rs` uses).
fn sfa_strategy() -> impl Strategy<Value = Sfa> {
    let position =
        prop::collection::vec((prop::sample::select([2usize, 3, 4]), any::<u32>()), 2..8);
    (position, any::<bool>()).prop_map(|(positions, bubble)| {
        let mut b = SfaBuilder::new();
        let start = b.add_node();
        let mut cur = start;
        let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789".chars().collect();
        for (i, (fanout, salt)) in positions.iter().enumerate() {
            let next = b.add_node();
            let mut chars: Vec<char> = (0..*fanout)
                .map(|j| alphabet[((salt >> (j * 5)) as usize + j * 7 + i) % alphabet.len()])
                .collect();
            chars.sort_unstable();
            chars.dedup();
            let n = chars.len();
            let emissions: Vec<Emission> = chars
                .into_iter()
                .enumerate()
                .map(|(j, c)| {
                    let p = (j + 1) as f64 / (n * (n + 1) / 2) as f64;
                    Emission::new(c.to_string(), p)
                })
                .collect();
            if bubble && i == 1 && emissions.len() >= 2 {
                let (left, right) = emissions.split_at(1);
                let mid = b.add_node();
                b.add_edge(cur, mid, left.to_vec());
                b.add_edge(mid, next, vec![Emission::new("_", 1.0)]);
                b.add_edge(cur, next, right.to_vec());
            } else {
                b.add_edge(cur, next, emissions);
            }
            cur = next;
        }
        b.build(start, cur).expect("generated SFA is valid")
    })
}

/// A random pattern in the supported dialect, built from an AST so it is
/// always syntactically valid.
fn pattern_strategy() -> impl Strategy<Value = String> {
    let leaf = prop::sample::select(vec![
        "a".to_string(),
        "b".to_string(),
        "c".to_string(),
        r"\d".to_string(),
        "[ab]".to_string(),
    ]);
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}{b}")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}|{b})")),
            inner.clone().prop_map(|a| format!("({a})*")),
            inner.clone().prop_map(|a| format!("({a})?")),
            inner.prop_map(|a| format!("({a})+")),
        ]
    })
}

/// Assert the kernel evaluates `blob` bit-identically to the naive DP,
/// and that a prescreen skip only happens on exactly-zero rows.
fn assert_blob_identity(q: &Query, blob: &[u8], scratch: &mut ScanScratch) {
    let naive = eval_sfa(&q.dfa, &codec::decode(blob).unwrap());
    let out = q.kernel.eval_blob(scratch, blob).unwrap();
    assert_eq!(
        out.probability.to_bits(),
        naive.to_bits(),
        "pattern {:?}: kernel={} naive={} (prescreened={})",
        q.pattern,
        out.probability,
        naive,
        out.prescreened
    );
    if out.prescreened {
        assert_eq!(naive, 0.0, "prescreen skipped a row with mass");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // FullSFA and Staccato blobs under random regex patterns. The
    // Staccato approximations exercise multi-character chunk labels and
    // the label-transition memo; the scratch is reused across every blob
    // of a case, as a scan worker would.
    #[test]
    fn kernel_blob_eval_is_bit_identical(sfa in sfa_strategy(), pattern in pattern_strategy()) {
        let q = Query::regex(&pattern).unwrap();
        let mut scratch = ScanScratch::new();
        assert_blob_identity(&q, &codec::encode(&sfa), &mut scratch);
        for (m, k) in [(3usize, 2usize), (8, 4)] {
            let blob = codec::encode(&approximate(&sfa, StaccatoParams::new(m, k)));
            assert_blob_identity(&q, &blob, &mut scratch);
        }
    }

    // Keyword queries carry a required literal, so this drives both
    // prescreen tiers hard: most random keywords miss most random SFAs.
    #[test]
    fn kernel_prescreen_is_sound_on_keywords(
        sfa in sfa_strategy(),
        word in "[a-z0-9]{1,4}",
    ) {
        let q = Query::keyword(&word).unwrap();
        let mut scratch = ScanScratch::new();
        assert_blob_identity(&q, &codec::encode(&sfa), &mut scratch);
        let blob = codec::encode(&approximate(&sfa, StaccatoParams::new(4, 3)));
        assert_blob_identity(&q, &blob, &mut scratch);
    }

    // LIKE queries compile to exact-match DFAs with a different literal
    // derivation (leading `%` stripped first).
    #[test]
    fn kernel_like_eval_is_bit_identical(
        sfa in sfa_strategy(),
        word in "[a-z0-9]{1,3}",
        contains in any::<bool>(),
    ) {
        let pattern = if contains { format!("%{word}%") } else { format!("{word}%") };
        let q = Query::like(&pattern).unwrap();
        let mut scratch = ScanScratch::new();
        assert_blob_identity(&q, &codec::encode(&sfa), &mut scratch);
    }

    // MAP / k-MAP: the kernel's string evaluators must reproduce
    // `eval_strings` exactly — the whole group sum and each
    // single-string evaluation.
    #[test]
    fn kernel_string_eval_is_bit_identical(
        raw in prop::collection::vec(("[a-z ]{0,12}", 1u32..1000), 0..8),
        pattern in pattern_strategy(),
        word in "[a-z]{1,3}",
        keyword in any::<bool>(),
    ) {
        let strings: Vec<(String, f64)> = raw
            .into_iter()
            .map(|(s, millis)| (s, millis as f64 / 1000.0))
            .collect();
        let q = if keyword { Query::keyword(&word) } else { Query::regex(&pattern) }.unwrap();
        let naive = eval_strings(&q.dfa, strings.iter().map(|(s, p)| (s.as_str(), *p)));
        let group = q.kernel.eval_string_group(strings.iter().map(|(s, p)| (s.as_str(), *p)));
        assert_eq!(group.probability.to_bits(), naive.to_bits());
        if group.prescreened {
            assert_eq!(naive, 0.0);
        }
        for (s, p) in &strings {
            let single = q.kernel.eval_string(s, *p);
            let naive = eval_strings(&q.dfa, std::iter::once((s.as_str(), *p)));
            assert_eq!(
                single.probability.to_bits(),
                naive.to_bits(),
                "string {:?} under {:?}",
                s,
                q.pattern
            );
        }
    }
}
