//! Planner correctness: the access path must never change the answer.
//!
//! The §4 contract is that index-assisted execution is transparent — for
//! an anchored pattern the probe returns the same answer *set* as the
//! filescan it replaces — and the planner must only pick the probe when
//! it is actually legal (Staccato representation, left anchor, registered
//! index covering the anchor term).

use staccato::approx::StaccatoParams;
use staccato::automata::Trie;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::store::LoadOptions;
use staccato::storage::Database;
use staccato::{Approach, Plan, PlanPreference, QueryRequest, Staccato};
use std::collections::BTreeSet;

fn session(lines: usize, seed: u64) -> Staccato {
    let dataset = generate(CorpusKind::CongressActs, lines, seed);
    let db = Database::in_memory(2048).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(seed),
        kmap_k: 8,
        staccato: StaccatoParams::new(10, 8),
        parallelism: 2,
    };
    Staccato::load(db, &dataset, &opts).expect("load")
}

fn keys(answers: &[staccato::Answer]) -> BTreeSet<i64> {
    answers.iter().map(|a| a.data_key).collect()
}

#[test]
fn probe_and_filescan_answer_sets_agree_across_approaches() {
    let mut s = session(80, 33);
    s.register_index(&Trie::build(["public", "president", "commission"]), "inv")
        .expect("index");
    for pattern in ["President", "Commission", r"Public Law (8|9)\d"] {
        for approach in Approach::all() {
            let request = QueryRequest::regex(pattern)
                .approach(approach)
                .num_ans(10_000);
            let auto = s.execute(&request).expect("auto plan");
            let scan = s
                .execute(
                    &request
                        .clone()
                        .plan_preference(PlanPreference::ForceFileScan),
                )
                .expect("forced filescan");
            // Only the Staccato representation may route through the index…
            assert_eq!(
                auto.plan.is_index_probe(),
                approach == Approach::Staccato,
                "{pattern} over {}",
                approach.name()
            );
            assert!(!scan.plan.is_index_probe());
            // …and when it does, the answer set must not change.
            assert_eq!(
                keys(&auto.answers),
                keys(&scan.answers),
                "{pattern} over {} answers diverged",
                approach.name()
            );
        }
    }
}

#[test]
fn filescan_probabilities_identical_under_any_parallelism() {
    let s = session(40, 8);
    for approach in Approach::all() {
        let request = QueryRequest::regex(r"U.S.C. 2\d\d\d")
            .approach(approach)
            .num_ans(1000);
        let seq = s.execute(&request).expect("sequential");
        let par = s
            .execute(&request.clone().parallelism(4))
            .expect("parallel");
        assert_eq!(seq.answers.len(), par.answers.len(), "{}", approach.name());
        for (a, b) in seq.answers.iter().zip(&par.answers) {
            assert_eq!(a.data_key, b.data_key);
            assert!((a.probability - b.probability).abs() < 1e-12);
        }
    }
}

#[test]
fn explain_reports_probe_only_when_index_and_anchor_exist() {
    let mut s = session(30, 12);
    let anchored = QueryRequest::keyword("President");
    let unanchored = QueryRequest::regex(r"\d\d\d");

    // No index registered: everything filescans.
    assert!(s.explain(&anchored).expect("explain").contains("FileScan"));
    assert!(!s
        .explain(&anchored)
        .expect("explain")
        .contains("IndexProbe"));

    s.register_index(&Trie::build(["president"]), "inv")
        .expect("index");

    // Anchored + covered term: probe, and the report names index + anchor.
    let text = s.explain(&anchored).expect("explain");
    assert!(text.contains("IndexProbe"), "{text}");
    assert!(text.contains("\"inv\""), "{text}");
    assert!(text.contains("president"), "{text}");

    // No anchor: still a filescan.
    let text = s.explain(&unanchored).expect("explain");
    assert!(
        text.contains("FileScan") && !text.contains("IndexProbe"),
        "{text}"
    );
    // Anchor outside the dictionary: filescan.
    let text = s
        .explain(&QueryRequest::keyword("Commission"))
        .expect("explain");
    assert!(
        text.contains("FileScan") && !text.contains("IndexProbe"),
        "{text}"
    );
    // Non-Staccato representation: filescan.
    let text = s
        .explain(&anchored.clone().approach(Approach::FullSfa))
        .expect("explain");
    assert!(
        text.contains("FileScan") && !text.contains("IndexProbe"),
        "{text}"
    );
}

#[test]
fn plan_matches_execution_and_stats_fill_in() {
    let mut s = session(35, 27);
    s.register_index(&Trie::build(["president"]), "inv")
        .expect("index");
    let request = QueryRequest::keyword("President").num_ans(50);
    let planned = s.plan(&request).expect("plan");
    let out = s.execute(&request).expect("execute");
    assert_eq!(planned, out.plan);
    assert_eq!(
        planned,
        Plan::IndexProbe {
            index: "inv".into(),
            anchor: "president".into()
        }
    );
    assert!(out.stats.postings_probed > 0);
    assert!(out.stats.rows_scanned as usize <= s.line_count());
    assert!(out.stats.wall.as_nanos() > 0);

    // The forced scan reads every line instead.
    let scan = s
        .execute(&request.plan_preference(PlanPreference::ForceFileScan))
        .expect("scan");
    assert_eq!(scan.stats.rows_scanned as usize, s.line_count());
    assert_eq!(scan.stats.postings_probed, 0);
}
