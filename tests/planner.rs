//! Planner correctness: the access path must never change the answer.
//!
//! The §4 contract is that index-assisted execution is transparent — for
//! an anchored pattern the probe returns the same answer *set* as the
//! filescan it replaces — and the planner must only pick the probe when
//! it is actually legal (Staccato representation, left anchor, registered
//! index covering the anchor term).

use staccato::approx::StaccatoParams;
use staccato::automata::Trie;
use staccato::ocr::{generate, ChannelConfig, CorpusKind, Dataset, Document};
use staccato::query::store::LoadOptions;
use staccato::storage::Database;
use staccato::{AggregateFunc, Approach, Plan, PlanPreference, QueryRequest, Staccato};
use std::collections::BTreeSet;

fn session(lines: usize, seed: u64) -> Staccato {
    let dataset = generate(CorpusKind::CongressActs, lines, seed);
    let db = Database::in_memory(2048).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(seed),
        kmap_k: 8,
        staccato: StaccatoParams::new(10, 8),
        parallelism: 2,
    };
    Staccato::load(db, &dataset, &opts).expect("load")
}

fn keys(answers: &[staccato::Answer]) -> BTreeSet<i64> {
    answers.iter().map(|a| a.data_key).collect()
}

#[test]
fn probe_and_filescan_answer_sets_agree_across_approaches() {
    let s = session(80, 33);
    s.register_index(&Trie::build(["public", "president", "commission"]), "inv")
        .expect("index");
    for pattern in ["President", "Commission", r"Public Law (8|9)\d"] {
        for approach in Approach::all() {
            let request = QueryRequest::regex(pattern)
                .approach(approach)
                .num_ans(10_000);
            let auto = s.execute(&request).expect("auto plan");
            let scan = s
                .execute(
                    &request
                        .clone()
                        .plan_preference(PlanPreference::ForceFileScan),
                )
                .expect("forced filescan");
            // Only the Staccato representation may route through the index…
            assert_eq!(
                auto.plan.is_index_probe(),
                approach == Approach::Staccato,
                "{pattern} over {}",
                approach.name()
            );
            assert!(!scan.plan.is_index_probe());
            // …and when it does, the answer set must not change.
            assert_eq!(
                keys(&auto.answers),
                keys(&scan.answers),
                "{pattern} over {} answers diverged",
                approach.name()
            );
        }
    }
}

#[test]
fn filescan_probabilities_identical_under_any_parallelism() {
    let s = session(40, 8);
    for approach in Approach::all() {
        let request = QueryRequest::regex(r"U.S.C. 2\d\d\d")
            .approach(approach)
            .num_ans(1000);
        let seq = s.execute(&request).expect("sequential");
        let par = s
            .execute(&request.clone().parallelism(4))
            .expect("parallel");
        assert_eq!(seq.answers.len(), par.answers.len(), "{}", approach.name());
        for (a, b) in seq.answers.iter().zip(&par.answers) {
            assert_eq!(a.data_key, b.data_key);
            assert!((a.probability - b.probability).abs() < 1e-12);
        }
    }
}

#[test]
fn parallelism_is_honored_or_a_documented_noop_on_every_plan_shape() {
    let s = session(30, 51);
    // FileScan: every representation carries the requested parallelism —
    // the morsel scan partitions string evaluation exactly like SFA
    // evaluation.
    for approach in Approach::all() {
        let plan = s
            .plan(
                &QueryRequest::keyword("President")
                    .approach(approach)
                    .parallelism(4),
            )
            .expect("plan");
        assert_eq!(
            plan,
            Plan::FileScan {
                approach,
                parallelism: 4
            },
            "{}",
            approach.name()
        );
    }
    // Aggregate: the input filescan keeps the requested parallelism.
    let plan = s
        .plan(
            &QueryRequest::keyword("President")
                .approach(Approach::Map)
                .parallelism(3)
                .aggregate(AggregateFunc::SumProb),
        )
        .expect("aggregate plan");
    assert_eq!(
        plan.access_path(),
        &Plan::FileScan {
            approach: Approach::Map,
            parallelism: 3
        }
    );
    // IndexProbe: parallelism is a documented no-op — the plan carries no
    // worker count (probes point-fetch a handful of candidates), and the
    // answers are unchanged by requesting it.
    s.register_index(&Trie::build(["president"]), "inv")
        .expect("index");
    let request = QueryRequest::keyword("President").num_ans(1000);
    let par = s.execute(&request.clone().parallelism(4)).expect("probe");
    assert_eq!(
        par.plan,
        Plan::IndexProbe {
            index: "inv".into(),
            anchor: "president".into()
        }
    );
    let seq = s.execute(&request).expect("probe");
    assert_eq!(par.answers.len(), seq.answers.len());
    for (a, b) in par.answers.iter().zip(&seq.answers) {
        assert_eq!(a.data_key, b.data_key);
        assert_eq!(a.probability, b.probability);
    }
}

#[test]
fn explain_reports_probe_only_when_index_and_anchor_exist() {
    let s = session(30, 12);
    let anchored = QueryRequest::keyword("President");
    let unanchored = QueryRequest::regex(r"\d\d\d");

    // No index registered: everything filescans.
    assert!(s.explain(&anchored).expect("explain").contains("FileScan"));
    assert!(!s
        .explain(&anchored)
        .expect("explain")
        .contains("IndexProbe"));

    s.register_index(&Trie::build(["president"]), "inv")
        .expect("index");

    // Anchored + covered term: probe, and the report names index + anchor.
    let text = s.explain(&anchored).expect("explain");
    assert!(text.contains("IndexProbe"), "{text}");
    assert!(text.contains("\"inv\""), "{text}");
    assert!(text.contains("president"), "{text}");

    // No anchor: still a filescan.
    let text = s.explain(&unanchored).expect("explain");
    assert!(
        text.contains("FileScan") && !text.contains("IndexProbe"),
        "{text}"
    );
    // Anchor outside the dictionary: filescan.
    let text = s
        .explain(&QueryRequest::keyword("Commission"))
        .expect("explain");
    assert!(
        text.contains("FileScan") && !text.contains("IndexProbe"),
        "{text}"
    );
    // Non-Staccato representation: filescan.
    let text = s
        .explain(&anchored.clone().approach(Approach::FullSfa))
        .expect("explain");
    assert!(
        text.contains("FileScan") && !text.contains("IndexProbe"),
        "{text}"
    );
}

#[test]
fn plan_matches_execution_and_stats_fill_in() {
    let s = session(35, 27);
    s.register_index(&Trie::build(["president"]), "inv")
        .expect("index");
    let request = QueryRequest::keyword("President").num_ans(50);
    let planned = s.plan(&request).expect("plan");
    let out = s.execute(&request).expect("execute");
    assert_eq!(planned, out.plan);
    assert_eq!(
        planned,
        Plan::IndexProbe {
            index: "inv".into(),
            anchor: "president".into()
        }
    );
    assert!(out.stats.postings_probed > 0);
    assert!(out.stats.rows_scanned as usize <= s.line_count());
    assert!(out.stats.plan_wall.as_nanos() > 0, "planning is timed");
    assert!(out.stats.exec_wall.as_nanos() > 0, "execution is timed");
    assert_eq!(out.stats.wall(), out.stats.plan_wall + out.stats.exec_wall);

    // The forced scan reads every line instead.
    let scan = s
        .execute(&request.plan_preference(PlanPreference::ForceFileScan))
        .expect("scan");
    assert_eq!(scan.stats.rows_scanned as usize, s.line_count());
    assert_eq!(scan.stats.postings_probed, 0);
}

#[test]
fn threshold_zero_and_one_are_exact_edges() {
    let s = session(40, 41);
    let base = QueryRequest::keyword("President")
        .approach(Approach::FullSfa)
        .num_ans(10_000);
    let plain = s.execute(&base).expect("no threshold");
    // Threshold 0.0 is the no-op filter: identical relation.
    let zero = s.execute(&base.clone().min_prob(0.0)).expect("t = 0.0");
    assert_eq!(plain.answers.len(), zero.answers.len());
    for (a, b) in plain.answers.iter().zip(&zero.answers) {
        assert_eq!(a.data_key, b.data_key);
        assert_eq!(a.probability, b.probability);
    }
    // Threshold 1.0 keeps only certain matches (usually none under OCR
    // noise), never a probability below 1.
    let one = s.execute(&base.clone().min_prob(1.0)).expect("t = 1.0");
    assert!(one.answers.iter().all(|a| a.probability >= 1.0));
    assert!(one.answers.len() <= plain.answers.len());
}

#[test]
fn aggregates_over_an_empty_store() {
    // A legitimate load of zero lines: the answer relation is empty and
    // every aggregate is well-defined.
    let dataset = Dataset {
        name: "empty".into(),
        kind: CorpusKind::Books,
        docs: vec![Document {
            name: "blank".into(),
            lines: vec![],
        }],
    };
    let db = Database::in_memory(256).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(1),
        kmap_k: 4,
        staccato: StaccatoParams::new(4, 4),
        parallelism: 1,
    };
    let s = Staccato::load(db, &dataset, &opts).expect("load empty store");
    assert_eq!(s.line_count(), 0);
    for func in [
        AggregateFunc::CountStar,
        AggregateFunc::SumProb,
        AggregateFunc::AvgProb,
    ] {
        let out = s
            .execute(&QueryRequest::like("%Ford%").aggregate(func))
            .expect("aggregate over empty store");
        let agg = out.aggregate.expect("aggregate result");
        assert_eq!(agg.value, 0.0, "{} over empty store", func.sql_name());
        assert!(out.answers.is_empty());
        assert_eq!(out.stats.rows_scanned, 0);
    }
    let sql = s
        .sql("SELECT AVG(Prob) FROM StaccatoData WHERE Data LIKE '%Ford%'")
        .expect("sql aggregate");
    assert_eq!(sql.aggregate.unwrap().value, 0.0);
}

#[test]
fn forced_index_probe_composes_with_thresholds_and_aggregates() {
    let s = session(60, 47);
    s.register_index(&Trie::build(["president"]), "inv")
        .expect("index");
    let forced = QueryRequest::keyword("President")
        .num_ans(10_000)
        .plan_preference(PlanPreference::ForceIndexProbe);
    let all = s.execute(&forced).expect("forced probe");
    assert!(all.plan.is_index_probe());
    assert!(!all.answers.is_empty(), "corpus mentions the President");
    let cutoff = all.answers[all.answers.len() / 2].probability;
    let thresholded = s
        .execute(&forced.clone().min_prob(cutoff))
        .expect("forced probe + threshold");
    assert!(thresholded.plan.is_index_probe());
    let expected: Vec<i64> = all
        .answers
        .iter()
        .filter(|a| a.probability >= cutoff)
        .map(|a| a.data_key)
        .collect();
    assert_eq!(
        thresholded
            .answers
            .iter()
            .map(|a| a.data_key)
            .collect::<Vec<_>>(),
        expected,
        "threshold must filter, not re-rank"
    );
    // An aggregate over the forced probe streams the same relation.
    let count = s
        .execute(
            &forced
                .clone()
                .min_prob(cutoff)
                .aggregate(AggregateFunc::CountStar),
        )
        .expect("forced probe + aggregate");
    assert_eq!(count.plan.kind(), "Aggregate");
    assert!(count.plan.is_index_probe(), "input path is still the probe");
    assert_eq!(
        count.aggregate.unwrap().value,
        thresholded.answers.len() as f64
    );
}
