//! Shared-session concurrency: one `Arc<Staccato>`, many client threads,
//! byte-identical results.
//!
//! The sharing contract (session module docs) is that a session behind an
//! `Arc` serves concurrent traffic with no external locking and no change
//! in semantics: every thread sees exactly the answers, probabilities,
//! and `explain()` text a serial run produces. One extra thread races
//! `register_index` mid-flight to exercise the compiled-query cache's
//! epoch invalidation — its dictionaries cover no query anchor, so plans
//! stay stable while the registry and cache churn underneath.

use staccato::approx::StaccatoParams;
use staccato::automata::Trie;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::store::LoadOptions;
use staccato::storage::Database;
use staccato::{AggregateFunc, Answer, Approach, QueryRequest, Staccato};
use std::sync::Arc;

fn session(lines: usize, seed: u64) -> Staccato {
    let dataset = generate(CorpusKind::CongressActs, lines, seed);
    let db = Database::in_memory(2048).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(seed),
        kmap_k: 6,
        staccato: StaccatoParams::new(10, 6),
        parallelism: 2,
    };
    Staccato::load(db, &dataset, &opts).expect("load")
}

/// The mixed query set: every representation, both dialects, a threshold,
/// an aggregate, and an intra-query-parallel scan.
fn workload() -> Vec<QueryRequest> {
    vec![
        QueryRequest::keyword("President"),
        QueryRequest::keyword("Commission").approach(Approach::Map),
        QueryRequest::like("%United States%")
            .approach(Approach::KMap)
            .num_ans(50),
        QueryRequest::regex(r"Public Law (8|9)\d").parallelism(2),
        QueryRequest::keyword("the")
            .approach(Approach::FullSfa)
            .num_ans(20),
        QueryRequest::keyword("Act")
            .approach(Approach::Map)
            .aggregate(AggregateFunc::CountStar),
        QueryRequest::keyword("employment").min_prob(0.2),
    ]
}

/// Everything a client observes for one request: the ranked relation,
/// the aggregate scalar, and the plan report.
type Observation = (Vec<Answer>, Option<f64>, String);

fn observe(session: &Staccato, request: &QueryRequest) -> Observation {
    let out = session.execute(request).expect("execute");
    let explain = session.explain(request).expect("explain");
    (out.answers, out.aggregate.map(|a| a.value), explain)
}

#[test]
fn eight_threads_see_byte_identical_results_while_an_index_registers() {
    let session = Arc::new(session(32, 77));
    let workload = workload();

    // The serial ground truth, taken before any concurrency.
    let baseline: Vec<Observation> = workload.iter().map(|q| observe(&session, q)).collect();

    std::thread::scope(|scope| {
        // One writer racing the readers: registers three indexes whose
        // dictionaries cover no query anchor (plans cannot change), each
        // registration scanning the store and bumping the cache epoch.
        {
            let session = Arc::clone(&session);
            scope.spawn(move || {
                for i in 0..3 {
                    let postings = session
                        .register_index(
                            &Trie::build(["zzzabsent", "qqqmissing"]),
                            &format!("race{i}"),
                        )
                        .expect("racing registration");
                    assert_eq!(postings, 0, "dictionary terms are absent from the corpus");
                }
            });
        }
        for t in 0..8 {
            let session = Arc::clone(&session);
            let workload = &workload;
            let baseline = &baseline;
            scope.spawn(move || {
                for round in 0..2 {
                    for step in 0..workload.len() {
                        // Stagger the order per thread so the cache sees
                        // interleaved keys, not eight lockstep streams.
                        let i = (step + t) % workload.len();
                        let (answers, aggregate, explain) = observe(&session, &workload[i]);
                        let (base_answers, base_aggregate, base_explain) = &baseline[i];
                        assert_eq!(
                            &answers, base_answers,
                            "thread {t} round {round} query {i}: answers diverged"
                        );
                        assert_eq!(
                            &aggregate, base_aggregate,
                            "thread {t} round {round} query {i}: aggregate diverged"
                        );
                        assert_eq!(
                            &explain, base_explain,
                            "thread {t} round {round} query {i}: explain diverged"
                        );
                    }
                }
            });
        }
    });

    // The race actually exercised invalidation, and the cache served
    // repeated traffic.
    let cache = session.query_cache_stats();
    assert_eq!(cache.invalidations, 3, "{cache:?}");
    assert!(cache.hits > 0, "{cache:?}");
    assert_eq!(
        session.index_names(),
        vec!["race0", "race1", "race2"],
        "registrations serialized in order"
    );

    // End to end: a registration covering a live anchor flips the cached
    // plan on the very next lookup.
    let anchored = QueryRequest::keyword("President");
    assert!(!session.plan(&anchored).expect("plan").is_index_probe());
    session
        .register_index(&Trie::build(["president"]), "inv")
        .expect("covering index");
    assert!(
        session.plan(&anchored).expect("replan").is_index_probe(),
        "cache invalidation must let the new index take over"
    );
}
