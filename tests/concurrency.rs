//! Shared-session concurrency: one `Arc<Staccato>`, many client threads,
//! byte-identical results.
//!
//! The sharing contract (session module docs) is that a session behind an
//! `Arc` serves concurrent traffic with no external locking and no change
//! in semantics: every thread sees exactly the answers, probabilities,
//! and `explain()` text a serial run produces. One extra thread races
//! `register_index` mid-flight to exercise the compiled-query cache's
//! epoch invalidation — its dictionaries cover no query anchor, so plans
//! stay stable while the registry and cache churn underneath.

use staccato::approx::StaccatoParams;
use staccato::automata::Trie;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::store::LoadOptions;
use staccato::storage::Database;
use staccato::{
    AggregateFunc, Answer, Approach, DocumentInput, IngestBatch, QueryRequest, Staccato,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn session(lines: usize, seed: u64) -> Staccato {
    let dataset = generate(CorpusKind::CongressActs, lines, seed);
    let db = Database::in_memory(2048).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(seed),
        kmap_k: 6,
        staccato: StaccatoParams::new(10, 6),
        parallelism: 2,
    };
    Staccato::load(db, &dataset, &opts).expect("load")
}

/// The mixed query set: every representation, both dialects, a threshold,
/// an aggregate, and an intra-query-parallel scan.
fn workload() -> Vec<QueryRequest> {
    vec![
        QueryRequest::keyword("President"),
        QueryRequest::keyword("Commission").approach(Approach::Map),
        QueryRequest::like("%United States%")
            .approach(Approach::KMap)
            .num_ans(50),
        QueryRequest::regex(r"Public Law (8|9)\d").parallelism(2),
        QueryRequest::keyword("the")
            .approach(Approach::FullSfa)
            .num_ans(20),
        QueryRequest::keyword("Act")
            .approach(Approach::Map)
            .aggregate(AggregateFunc::CountStar),
        QueryRequest::keyword("employment").min_prob(0.2),
    ]
}

/// Everything a client observes for one request: the ranked relation,
/// the aggregate scalar, and the plan report.
type Observation = (Vec<Answer>, Option<f64>, String);

fn observe(session: &Staccato, request: &QueryRequest) -> Observation {
    let out = session.execute(request).expect("execute");
    let explain = session.explain(request).expect("explain");
    (out.answers, out.aggregate.map(|a| a.value), explain)
}

#[test]
fn eight_threads_see_byte_identical_results_while_an_index_registers() {
    let session = Arc::new(session(32, 77));
    let workload = workload();

    // The serial ground truth, taken before any concurrency.
    let baseline: Vec<Observation> = workload.iter().map(|q| observe(&session, q)).collect();

    std::thread::scope(|scope| {
        // One writer racing the readers: registers three indexes whose
        // dictionaries cover no query anchor (plans cannot change), each
        // registration scanning the store and bumping the cache epoch.
        {
            let session = Arc::clone(&session);
            scope.spawn(move || {
                for i in 0..3 {
                    let postings = session
                        .register_index(
                            &Trie::build(["zzzabsent", "qqqmissing"]),
                            &format!("race{i}"),
                        )
                        .expect("racing registration");
                    assert_eq!(postings, 0, "dictionary terms are absent from the corpus");
                }
            });
        }
        for t in 0..8 {
            let session = Arc::clone(&session);
            let workload = &workload;
            let baseline = &baseline;
            scope.spawn(move || {
                for round in 0..2 {
                    for step in 0..workload.len() {
                        // Stagger the order per thread so the cache sees
                        // interleaved keys, not eight lockstep streams.
                        let i = (step + t) % workload.len();
                        let (answers, aggregate, explain) = observe(&session, &workload[i]);
                        let (base_answers, base_aggregate, base_explain) = &baseline[i];
                        assert_eq!(
                            &answers, base_answers,
                            "thread {t} round {round} query {i}: answers diverged"
                        );
                        assert_eq!(
                            &aggregate, base_aggregate,
                            "thread {t} round {round} query {i}: aggregate diverged"
                        );
                        assert_eq!(
                            &explain, base_explain,
                            "thread {t} round {round} query {i}: explain diverged"
                        );
                    }
                }
            });
        }
    });

    // The race actually exercised invalidation, and the cache served
    // repeated traffic.
    let cache = session.query_cache_stats();
    assert_eq!(cache.invalidations, 3, "{cache:?}");
    assert!(cache.hits > 0, "{cache:?}");
    assert_eq!(
        session.index_names(),
        vec!["race0", "race1", "race2"],
        "registrations serialized in order"
    );

    // End to end: a registration covering a live anchor flips the cached
    // plan on the very next lookup.
    let anchored = QueryRequest::keyword("President");
    assert!(!session.plan(&anchored).expect("plan").is_index_probe());
    session
        .register_index(&Trie::build(["president"]), "inv")
        .expect("covering index");
    assert!(
        session.plan(&anchored).expect("replan").is_index_probe(),
        "cache invalidation must let the new index take over"
    );
}

/// The write-path sharing contract: batches are atomic units of
/// visibility. Four writers ingest through one `Arc<Staccato>` while two
/// readers hammer the SQL surface — a reader may land between batches
/// but never inside one: every `batch_seq` it observes in
/// `StaccatoHistory` is complete, and `line_count()` covers every
/// history row already visible.
#[test]
fn four_writers_two_readers_never_observe_a_partial_batch() {
    const BATCHES_PER_WRITER: u64 = 6;
    const DOCS_PER_BATCH: usize = 3;

    let session = Arc::new(session(12, 31));
    let loaded = session.line_count();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let session = Arc::clone(&session);
            scope.spawn(move || {
                for b in 0..BATCHES_PER_WRITER {
                    let mut batch = IngestBatch::new();
                    for d in 0..DOCS_PER_BATCH {
                        batch = batch.doc(
                            DocumentInput::new(
                                format!("w{w}-b{b}-d{d}.png"),
                                format!("writer {w} committed batch {b} document {d}"),
                            )
                            .provider(format!("writer-{w}")),
                        );
                    }
                    let receipt = session.ingest(batch).expect("ingest");
                    assert_eq!(receipt.docs, DOCS_PER_BATCH);
                }
            });
        }
        for r in 0..2 {
            let session = Arc::clone(&session);
            let done = &done;
            scope.spawn(move || {
                let mut observations = 0u64;
                while !done.load(Ordering::Acquire) || observations == 0 {
                    let lines = session.line_count();
                    let history = session
                        .sql("SELECT * FROM StaccatoHistory")
                        .expect("history scan")
                        .history
                        .expect("history rows");
                    // Snapshot order: `lines` was read BEFORE the history
                    // scan, so every key it promises must be present —
                    // but history may have grown past it since.
                    assert!(
                        history.len() + loaded >= lines,
                        "reader {r}: line_count {lines} promises rows the \
                         history scan (len {}) does not show",
                        history.len()
                    );
                    // Atomic visibility: a batch_seq is all-or-nothing.
                    let mut per_seq = std::collections::HashMap::new();
                    for row in &history {
                        *per_seq.entry(row.batch_seq).or_insert(0usize) += 1;
                        assert!(row.data_key >= loaded as i64);
                    }
                    for (seq, count) in per_seq {
                        assert_eq!(
                            count, DOCS_PER_BATCH,
                            "reader {r}: batch {seq} is partially visible"
                        );
                    }
                    observations += 1;
                }
            });
        }
        // Writers are the first four spawned threads; flag the readers
        // down once every writer's scope handle would have joined. A
        // sentinel thread keeps the readers honest without joining the
        // scope early.
        let session_done = Arc::clone(&session);
        let done = &done;
        scope.spawn(move || {
            let target = 4 * BATCHES_PER_WRITER as usize * DOCS_PER_BATCH + loaded;
            while session_done.line_count() < target {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });

    // All 24 batches landed, with dense distinct sequence numbers.
    let stats = session.ingest_stats();
    assert_eq!(stats.batches, 4 * BATCHES_PER_WRITER);
    assert_eq!(stats.docs, 4 * BATCHES_PER_WRITER * DOCS_PER_BATCH as u64);
    let history = session
        .sql("SELECT * FROM StaccatoHistory")
        .expect("history")
        .history
        .expect("rows");
    let mut seqs: Vec<u64> = history.iter().map(|r| r.batch_seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len() as u64, 4 * BATCHES_PER_WRITER);
    assert_eq!(*seqs.first().unwrap(), 1);
    assert_eq!(*seqs.last().unwrap(), 4 * BATCHES_PER_WRITER);
    // Every writer's every document is queryable. FullSFA, not MAP: the
    // exact lattice always gives the true string nonzero match mass
    // (other lattices may match too, with noise-level probability —
    // that is the paper's semantics, so membership is asserted, not an
    // exact count).
    let expected: Vec<i64> = history
        .iter()
        .filter(|r| r.file_name.starts_with("w3-b5-"))
        .map(|r| r.data_key)
        .collect();
    assert_eq!(expected.len(), DOCS_PER_BATCH);
    let out = session
        .sql(
            "SELECT DataKey, Prob FROM FullSFAData \
             WHERE Data LIKE '%writer 3 committed batch 5%' LIMIT 100",
        )
        .expect("select");
    for key in &expected {
        assert!(
            out.answers
                .iter()
                .any(|a| a.data_key == *key && a.probability > 0.0),
            "document {key} of writer 3 batch 5 must match its own text"
        );
    }
}
