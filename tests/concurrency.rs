//! Shared-session concurrency: one `Arc<Staccato>`, many client threads,
//! byte-identical results.
//!
//! The sharing contract (session module docs) is that a session behind an
//! `Arc` serves concurrent traffic with no external locking and no change
//! in semantics: every thread sees exactly the answers, probabilities,
//! and `explain()` text a serial run produces. One extra thread races
//! `register_index` mid-flight to exercise the compiled-query cache's
//! epoch invalidation — its dictionaries cover no query anchor, so plans
//! stay stable while the registry and cache churn underneath.

use staccato::approx::StaccatoParams;
use staccato::automata::Trie;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::store::LoadOptions;
use staccato::query::RecoverOptions;
use staccato::storage::Database;
use staccato::{
    AggregateFunc, Answer, Approach, DocumentInput, IngestBatch, IngestReceipt, QueryRequest,
    Staccato, SyncPolicy,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

fn session(lines: usize, seed: u64) -> Staccato {
    let dataset = generate(CorpusKind::CongressActs, lines, seed);
    let db = Database::in_memory(2048).expect("db");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(seed),
        kmap_k: 6,
        staccato: StaccatoParams::new(10, 6),
        parallelism: 2,
    };
    Staccato::load(db, &dataset, &opts).expect("load")
}

/// The mixed query set: every representation, both dialects, a threshold,
/// an aggregate, and an intra-query-parallel scan.
fn workload() -> Vec<QueryRequest> {
    vec![
        QueryRequest::keyword("President"),
        QueryRequest::keyword("Commission").approach(Approach::Map),
        QueryRequest::like("%United States%")
            .approach(Approach::KMap)
            .num_ans(50),
        QueryRequest::regex(r"Public Law (8|9)\d").parallelism(2),
        QueryRequest::keyword("the")
            .approach(Approach::FullSfa)
            .num_ans(20),
        QueryRequest::keyword("Act")
            .approach(Approach::Map)
            .aggregate(AggregateFunc::CountStar),
        QueryRequest::keyword("employment").min_prob(0.2),
    ]
}

/// Everything a client observes for one request: the ranked relation,
/// the aggregate scalar, and the plan report.
type Observation = (Vec<Answer>, Option<f64>, String);

fn observe(session: &Staccato, request: &QueryRequest) -> Observation {
    let out = session.execute(request).expect("execute");
    let explain = session.explain(request).expect("explain");
    (out.answers, out.aggregate.map(|a| a.value), explain)
}

#[test]
fn eight_threads_see_byte_identical_results_while_an_index_registers() {
    let session = Arc::new(session(32, 77));
    let workload = workload();

    // The serial ground truth, taken before any concurrency.
    let baseline: Vec<Observation> = workload.iter().map(|q| observe(&session, q)).collect();

    std::thread::scope(|scope| {
        // One writer racing the readers: registers three indexes whose
        // dictionaries cover no query anchor (plans cannot change), each
        // registration scanning the store and bumping the cache epoch.
        {
            let session = Arc::clone(&session);
            scope.spawn(move || {
                for i in 0..3 {
                    let postings = session
                        .register_index(
                            &Trie::build(["zzzabsent", "qqqmissing"]),
                            &format!("race{i}"),
                        )
                        .expect("racing registration");
                    assert_eq!(postings, 0, "dictionary terms are absent from the corpus");
                }
            });
        }
        for t in 0..8 {
            let session = Arc::clone(&session);
            let workload = &workload;
            let baseline = &baseline;
            scope.spawn(move || {
                for round in 0..2 {
                    for step in 0..workload.len() {
                        // Stagger the order per thread so the cache sees
                        // interleaved keys, not eight lockstep streams.
                        let i = (step + t) % workload.len();
                        let (answers, aggregate, explain) = observe(&session, &workload[i]);
                        let (base_answers, base_aggregate, base_explain) = &baseline[i];
                        assert_eq!(
                            &answers, base_answers,
                            "thread {t} round {round} query {i}: answers diverged"
                        );
                        assert_eq!(
                            &aggregate, base_aggregate,
                            "thread {t} round {round} query {i}: aggregate diverged"
                        );
                        assert_eq!(
                            &explain, base_explain,
                            "thread {t} round {round} query {i}: explain diverged"
                        );
                    }
                }
            });
        }
    });

    // The race actually exercised invalidation, and the cache served
    // repeated traffic.
    let cache = session.query_cache_stats();
    assert_eq!(cache.invalidations, 3, "{cache:?}");
    assert!(cache.hits > 0, "{cache:?}");
    assert_eq!(
        session.index_names(),
        vec!["race0", "race1", "race2"],
        "registrations serialized in order"
    );

    // End to end: a registration covering a live anchor flips the cached
    // plan on the very next lookup.
    let anchored = QueryRequest::keyword("President");
    assert!(!session.plan(&anchored).expect("plan").is_index_probe());
    session
        .register_index(&Trie::build(["president"]), "inv")
        .expect("covering index");
    assert!(
        session.plan(&anchored).expect("replan").is_index_probe(),
        "cache invalidation must let the new index take over"
    );
}

/// The lock-free read hot path under maximum churn: sixteen readers on
/// RCU page hits, sharded cache lookups, and registry snapshots, while
/// one racer registers indexes (each registration swaps the registry
/// snapshot and bumps the cache epoch) and one writer ingests batches
/// (each apply invalidates the cache and extends the registered
/// indexes). Results must stay bit-identical to the serial baseline —
/// answers, probabilities, order, and aggregates.
///
/// Determinism is engineered, not hoped for: a *covering* index is
/// registered before the baseline (so the probe-vs-scan choice is fixed
/// either way — and probe answer sets provably equal scan answer sets,
/// see `invindex::indexed_query_matches_filescan_answer_set`), and the
/// ingested documents use vocabulary character-disjoint from every
/// query pattern, so their lattices assign the patterns *exactly zero*
/// match mass — they can never enter a ranked relation or an aggregate.
/// Explain text is *not* asserted — replanning mid-race is legal;
/// producing different answers is not.
#[test]
fn sixteen_threads_stay_bit_identical_under_registry_and_ingest_churn() {
    const RACER_INDEXES: usize = 4;
    const WRITER_BATCHES: usize = 6;

    let session = Arc::new(session(48, 42));
    session
        .register_index(&Trie::build(["president", "public", "commission"]), "cov")
        .expect("covering index");
    let workload = vec![
        QueryRequest::keyword("President"),
        QueryRequest::regex(r"Public Law (8|9)\d"),
        QueryRequest::keyword("Commission").approach(Approach::Map),
        QueryRequest::like("%United States%").approach(Approach::KMap),
        QueryRequest::keyword("employment").min_prob(0.0001),
        QueryRequest::keyword("Commission")
            .approach(Approach::Map)
            .aggregate(AggregateFunc::CountStar),
    ];

    // Serial ground truth: ranked relation + aggregate scalar per query.
    let baseline: Vec<(Vec<Answer>, Option<f64>)> = workload
        .iter()
        .map(|q| {
            let out = session.execute(q).expect("baseline");
            (out.answers, out.aggregate.map(|a| a.value))
        })
        .collect();
    assert!(
        baseline.iter().any(|(a, _)| !a.is_empty()),
        "baseline must actually match something"
    );

    std::thread::scope(|scope| {
        // Registry racer: every registration builds off to the side,
        // publishes a new snapshot, and bumps the cache epoch.
        {
            let session = Arc::clone(&session);
            scope.spawn(move || {
                for i in 0..RACER_INDEXES {
                    session
                        .register_index(
                            &Trie::build(["zzqabsent", "qqmissing"]),
                            &format!("stress{i}"),
                        )
                        .expect("racing registration");
                }
            });
        }
        // Writer: disjoint-vocabulary documents — every apply
        // invalidates the cache and extends all registered indexes.
        {
            let session = Arc::clone(&session);
            scope.spawn(move || {
                for b in 0..WRITER_BATCHES {
                    let batch = IngestBatch::new()
                        .doc(DocumentInput::new(
                            format!("junk-{b}-a.png"),
                            format!("zzqx gribble flomp wubble batch {b}"),
                        ))
                        .doc(DocumentInput::new(
                            format!("junk-{b}-b.png"),
                            format!("vorpal snark boojum frabjous batch {b}"),
                        ));
                    session.ingest(batch).expect("racing ingest");
                }
            });
        }
        for t in 0..16 {
            let session = Arc::clone(&session);
            let workload = &workload;
            let baseline = &baseline;
            scope.spawn(move || {
                for round in 0..2 {
                    for step in 0..workload.len() {
                        let i = (step + t) % workload.len();
                        let out = session.execute(&workload[i]).expect("stress query");
                        let (base_answers, base_aggregate) = &baseline[i];
                        assert_eq!(
                            &out.answers, base_answers,
                            "thread {t} round {round} query {i}: answers diverged"
                        );
                        assert_eq!(
                            &out.aggregate.map(|a| a.value),
                            base_aggregate,
                            "thread {t} round {round} query {i}: aggregate diverged"
                        );
                    }
                }
            });
        }
    });

    // The churn actually happened: every registration and every batch
    // bumped the epoch at least once.
    let cache = session.query_cache_stats();
    assert!(
        cache.invalidations >= (RACER_INDEXES + WRITER_BATCHES) as u64,
        "{cache:?}"
    );
    assert!(cache.hits > 0, "{cache:?}");
    assert_eq!(session.line_count(), 48 + 2 * WRITER_BATCHES);
    assert_eq!(session.index_names().len(), 1 + RACER_INDEXES);
}

/// Per-query attribution survives the lock-free restructuring exactly:
/// summing every statement's `ExecStats.pool` delta reproduces the
/// session-global pool counters, and the cache sees precisely one
/// lookup per relational statement. Serial on purpose — with concurrent
/// clients the per-query deltas legitimately interleave; what this
/// pins is that nothing on the hot path stopped being counted (or got
/// counted twice) when the latches came off.
#[test]
fn per_query_pool_deltas_sum_to_the_global_counters() {
    let session = session(24, 17);
    session
        .register_index(&Trie::build(["president", "public"]), "inv")
        .expect("index");
    let statements = [
        "SELECT DataKey, Prob FROM MAPData WHERE Data REGEXP 'President' LIMIT 100",
        "SELECT DataKey, Prob FROM StaccatoData WHERE Data LIKE '%Commission%' LIMIT 100",
        "SELECT DataKey FROM StaccatoData WHERE Data REGEXP 'Public Law (8|9)\\d' LIMIT 100",
        "SELECT DataKey, Prob FROM kMAPData WHERE Data REGEXP 'United States' LIMIT 50",
        "SELECT COUNT(*) FROM MAPData WHERE Data LIKE '%Act%'",
        "SELECT DataKey FROM MAPData WHERE Data REGEXP 'employment' AND Prob >= 0.1 LIMIT 100",
    ];
    let pool_before = session.pool_stats();
    let cache_before = session.query_cache_stats();
    let (mut hits, mut misses, mut writebacks, mut evictions) = (0u64, 0u64, 0u64, 0u64);
    // Two rounds: the first misses the query cache, the second hits it —
    // attribution must be exact on both paths.
    for round in 0..2 {
        for sql in &statements {
            let out = session.sql(sql).expect("statement");
            hits += out.stats.pool.hits;
            misses += out.stats.pool.misses;
            writebacks += out.stats.pool.writebacks;
            evictions += out.stats.pool.evictions;
            assert!(
                round == 0 || out.stats.pool.hits + out.stats.pool.misses > 0,
                "warm statements still touch pages"
            );
        }
    }
    let pool = session.pool_stats().delta_since(pool_before);
    assert_eq!(pool.hits, hits, "pool hits attributed exactly");
    assert_eq!(pool.misses, misses, "pool misses attributed exactly");
    assert_eq!(pool.writebacks, writebacks, "writebacks attributed exactly");
    assert_eq!(pool.evictions, evictions, "evictions attributed exactly");
    let cache = session.query_cache_stats();
    assert_eq!(
        (cache.hits - cache_before.hits) + (cache.misses - cache_before.misses),
        2 * statements.len() as u64,
        "exactly one cache lookup per statement"
    );
    assert_eq!(
        cache.hits - cache_before.hits,
        statements.len() as u64,
        "the second round is all cache hits"
    );
}

/// The write-path sharing contract: batches are atomic units of
/// visibility. Four writers ingest through one `Arc<Staccato>` while two
/// readers hammer the SQL surface — a reader may land between batches
/// but never inside one: every `batch_seq` it observes in
/// `StaccatoHistory` is complete, and `line_count()` covers every
/// history row already visible.
#[test]
fn four_writers_two_readers_never_observe_a_partial_batch() {
    const BATCHES_PER_WRITER: u64 = 6;
    const DOCS_PER_BATCH: usize = 3;

    let session = Arc::new(session(12, 31));
    let loaded = session.line_count();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let session = Arc::clone(&session);
            scope.spawn(move || {
                for b in 0..BATCHES_PER_WRITER {
                    let mut batch = IngestBatch::new();
                    for d in 0..DOCS_PER_BATCH {
                        batch = batch.doc(
                            DocumentInput::new(
                                format!("w{w}-b{b}-d{d}.png"),
                                format!("writer {w} committed batch {b} document {d}"),
                            )
                            .provider(format!("writer-{w}")),
                        );
                    }
                    let receipt = session.ingest(batch).expect("ingest");
                    assert_eq!(receipt.docs, DOCS_PER_BATCH);
                }
            });
        }
        for r in 0..2 {
            let session = Arc::clone(&session);
            let done = &done;
            scope.spawn(move || {
                let mut observations = 0u64;
                while !done.load(Ordering::Acquire) || observations == 0 {
                    let lines = session.line_count();
                    let history = session
                        .sql("SELECT * FROM StaccatoHistory")
                        .expect("history scan")
                        .history
                        .expect("history rows");
                    // Snapshot order: `lines` was read BEFORE the history
                    // scan, so every key it promises must be present —
                    // but history may have grown past it since.
                    assert!(
                        history.len() + loaded >= lines,
                        "reader {r}: line_count {lines} promises rows the \
                         history scan (len {}) does not show",
                        history.len()
                    );
                    // Atomic visibility: a batch_seq is all-or-nothing.
                    let mut per_seq = std::collections::HashMap::new();
                    for row in &history {
                        *per_seq.entry(row.batch_seq).or_insert(0usize) += 1;
                        assert!(row.data_key >= loaded as i64);
                    }
                    for (seq, count) in per_seq {
                        assert_eq!(
                            count, DOCS_PER_BATCH,
                            "reader {r}: batch {seq} is partially visible"
                        );
                    }
                    observations += 1;
                }
            });
        }
        // Writers are the first four spawned threads; flag the readers
        // down once every writer's scope handle would have joined. A
        // sentinel thread keeps the readers honest without joining the
        // scope early.
        let session_done = Arc::clone(&session);
        let done = &done;
        scope.spawn(move || {
            let target = 4 * BATCHES_PER_WRITER as usize * DOCS_PER_BATCH + loaded;
            while session_done.line_count() < target {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });

    // All 24 batches landed, with dense distinct sequence numbers.
    let stats = session.ingest_stats();
    assert_eq!(stats.batches, 4 * BATCHES_PER_WRITER);
    assert_eq!(stats.docs, 4 * BATCHES_PER_WRITER * DOCS_PER_BATCH as u64);
    let history = session
        .sql("SELECT * FROM StaccatoHistory")
        .expect("history")
        .history
        .expect("rows");
    let mut seqs: Vec<u64> = history.iter().map(|r| r.batch_seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len() as u64, 4 * BATCHES_PER_WRITER);
    assert_eq!(*seqs.first().unwrap(), 1);
    assert_eq!(*seqs.last().unwrap(), 4 * BATCHES_PER_WRITER);
    // Every writer's every document is queryable. FullSFA, not MAP: the
    // exact lattice always gives the true string nonzero match mass
    // (other lattices may match too, with noise-level probability —
    // that is the paper's semantics, so membership is asserted, not an
    // exact count).
    let expected: Vec<i64> = history
        .iter()
        .filter(|r| r.file_name.starts_with("w3-b5-"))
        .map(|r| r.data_key)
        .collect();
    assert_eq!(expected.len(), DOCS_PER_BATCH);
    let out = session
        .sql(
            "SELECT DataKey, Prob FROM FullSFAData \
             WHERE Data LIKE '%writer 3 committed batch 5%' LIMIT 100",
        )
        .expect("select");
    for key in &expected {
        assert!(
            out.answers
                .iter()
                .any(|a| a.data_key == *key && a.probability > 0.0),
            "document {key} of writer 3 batch 5 must match its own text"
        );
    }
}

/// The group-commit write path under full contention: eight writers
/// share the WAL flusher while two readers scan. Three contracts at
/// once (the ones DESIGN.md's group-commit section argues):
///
/// * **Receipts are LSN-ordered.** Batch sequence numbers and WAL
///   offsets are both assigned under the writer latch, so sorting every
///   receipt by `batch_seq` must yield strictly increasing `lsn` — and
///   each ack means everything at or below that LSN is durable.
/// * **Reads are all-or-nothing.** A reader may land between batches,
///   never inside one.
/// * **Recovery is exact.** A crash after the last ack replays every
///   batch: the recovered store is byte-identical — keys, probabilities,
///   history rows, timestamps — to the never-crashed session.
#[test]
fn eight_writers_two_readers_group_commit_is_ordered_atomic_and_durable() {
    const WRITERS: u64 = 8;
    const BATCHES_PER_WRITER: u64 = 3;
    const DOCS_PER_BATCH: usize = 2;

    struct TempDir(PathBuf);
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let dir =
        TempDir(std::env::temp_dir().join(format!("staccato_conc_group_{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&dir.0);
    std::fs::create_dir_all(&dir.0).expect("temp dir");
    let db_path = dir.0.join("store.db");
    let wal_dir = dir.0.join("wal");

    let dataset = generate(CorpusKind::CongressActs, 8, 23);
    let opts = LoadOptions {
        channel: ChannelConfig::compact(23),
        kmap_k: 4,
        staccato: StaccatoParams::new(6, 4),
        parallelism: 1,
    };
    let session = Arc::new({
        let db = Database::create(&db_path, 2048).expect("create");
        let s = Staccato::load(db, &dataset, &opts).expect("load");
        s.checkpoint().expect("checkpoint");
        s.attach_wal(&wal_dir, SyncPolicy::Commit).expect("attach");
        s
    });
    let loaded = session.line_count();
    let receipts: Mutex<Vec<(u64, IngestReceipt)>> = Mutex::new(Vec::new());
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for r in 0..2 {
            let session = Arc::clone(&session);
            let done = &done;
            scope.spawn(move || {
                let mut observations = 0u64;
                while !done.load(Ordering::Acquire) || observations == 0 {
                    let lines = session.line_count();
                    let history = session
                        .sql("SELECT * FROM StaccatoHistory")
                        .expect("history scan")
                        .history
                        .expect("rows");
                    assert!(
                        history.len() + loaded >= lines,
                        "reader {r}: line_count promises rows history does not show"
                    );
                    let mut per_seq = std::collections::HashMap::new();
                    for row in &history {
                        *per_seq.entry(row.batch_seq).or_insert(0usize) += 1;
                    }
                    for (seq, count) in per_seq {
                        assert_eq!(
                            count, DOCS_PER_BATCH,
                            "reader {r}: batch {seq} is partially visible"
                        );
                    }
                    observations += 1;
                }
            });
        }
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let session = Arc::clone(&session);
                let receipts = &receipts;
                scope.spawn(move || {
                    let mut last_lsn = 0u64;
                    for b in 0..BATCHES_PER_WRITER {
                        let mut batch = IngestBatch::new();
                        for d in 0..DOCS_PER_BATCH {
                            batch = batch.doc(DocumentInput::new(
                                format!("w{w}-b{b}-d{d}.png"),
                                format!("writer {w} group batch {b} document {d}"),
                            ));
                        }
                        let receipt = session.ingest(batch).expect("ingest");
                        assert!(
                            receipt.lsn > last_lsn,
                            "writer {w}: receipts must be monotonically LSN-ordered"
                        );
                        last_lsn = receipt.lsn;
                        receipts.lock().unwrap().push((w, receipt));
                    }
                })
            })
            .collect();
        for handle in writers {
            handle.join().expect("writer");
        }
        done.store(true, Ordering::Release);
    });

    // Global ordering: batch_seq order IS lsn order — both are assigned
    // under the writer latch, and acks only come back durable.
    let mut receipts = receipts.into_inner().unwrap();
    receipts.sort_by_key(|(_, r)| r.batch_seq);
    let total = WRITERS * BATCHES_PER_WRITER;
    assert_eq!(receipts.len() as u64, total);
    for pair in receipts.windows(2) {
        assert!(
            pair[1].1.lsn > pair[0].1.lsn,
            "batch {} (lsn {}) must sit above batch {} (lsn {})",
            pair[1].1.batch_seq,
            pair[1].1.lsn,
            pair[0].1.batch_seq,
            pair[0].1.lsn
        );
    }
    let seqs: Vec<u64> = receipts.iter().map(|(_, r)| r.batch_seq).collect();
    assert_eq!(seqs, (1..=total).collect::<Vec<u64>>(), "dense sequences");
    let stats = session.ingest_stats();
    assert_eq!(stats.batches, total);
    assert!(stats.wal_group_commits > 0, "{stats:?}");

    // Crash after the last ack; the recovered store must be
    // byte-identical to the never-crashed one.
    let observe = |s: &Staccato| {
        let answers = s
            .sql("SELECT DataKey, Prob FROM StaccatoData WHERE Data LIKE '%e%' LIMIT 10000")
            .expect("select")
            .answers;
        let history = s
            .sql("SELECT * FROM StaccatoHistory")
            .expect("history")
            .history
            .expect("rows");
        (s.line_count(), answers, history)
    };
    let expected = observe(&session);
    drop(session);
    let recovered = Staccato::recover_with(
        &db_path,
        &wal_dir,
        &RecoverOptions {
            pool_frames: 2048,
            load: opts,
            sync: SyncPolicy::Commit,
        },
    )
    .expect("recover");
    assert_eq!(recovered.ingest_stats().replays, total);
    assert_eq!(observe(&recovered), expected);
}
